"""Wall-clock performance harness: ``python -m repro perf``.

Every other benchmark in this repository reports *simulated* PIM Model
counts (IO rounds, words, kernel work).  This module instead times the
simulator itself — how many operations per second the Python process
sustains — so regressions in the hot loop (word-cost accounting,
hashing, fragment matching) are visible as wall-clock, not just as
noise.

Three modes run in-process:

* **columnar** — the shipped configuration: every :mod:`repro.fastpath`
  optimization plus the :mod:`repro.columnar` flat-array query core
  (struct-of-arrays query trie, index-arithmetic span/respan, fused
  batch matching);
* **fast** — the object fast path with the columnar tier off
  (:func:`repro.fastpath.columnar_disabled`): cached word costs,
  type-dispatch cost cache, batch fingerprinting, fused pivot probes,
  per-family scan tables, per-piece match tables;
* **baseline** — the same workload under :func:`repro.fastpath.disabled`,
  which routes every hot call through the unoptimized reference path
  (equivalent to the pre-optimization code).

All three must produce *identical* PIM Model metrics and query results —
optimizations change wall-clock, never accounting.  ``bench_config``
asserts this by comparing the full :class:`MetricsSnapshot` after every
phase plus all query outputs, and records the proof in the emitted
``BENCH_wallclock.json``.  With ``reps > 1`` each mode is run that many
times and both the min (the headline, least-noise estimate) and the
median wall-clock per phase are reported.

Determinism note: trie-node, block, and meta-piece uids come from
process-global counters, and uid *values* feed set-iteration order in
block extraction, which feeds the random-module placement draws.  Two
in-process runs therefore only produce identical snapshots if the
counters are reset first — :func:`reset_id_counters` does exactly
that before every measured run.  (Within one run the simulation is
fully deterministic given the PIMSystem seed.)
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Optional, Sequence

from . import fastpath
from .bits import BitString
from .core import blocks as _blocks
from .core import meta as _meta
from .core.pimtrie import PIMTrie, PIMTrieConfig
from .pim import PIMSystem
from .trie import nodes as _nodes
from .workloads import single_range_flood, uniform_keys

__all__ = [
    "bench_config",
    "run_bench",
    "main",
    "reset_id_counters",
    "HEADLINE",
    "SMOKE",
]

#: The acceptance workload: batched ops at P=32, n=4096, l=256.
HEADLINE = {"P": 32, "n": 4096, "l": 256}

#: CI-sized workload (< 30 s wall-clock for both modes).
SMOKE = {"P": 8, "n": 512, "l": 64}


def reset_id_counters() -> None:
    """Reset the process-global uid counters (see module docstring).

    Shared by every harness that needs run-to-run byte determinism in
    one process (this module and the serve layer's smoke/bench).
    """
    _nodes.TrieNode._next_uid = 0
    _blocks._block_ids = itertools.count(1)
    _meta._piece_ids = itertools.count(1)


#: Measured configurations, slowest first.
MODES = ("baseline", "fast", "columnar")


def _mode_context(mode: str):
    """The fastpath state for one measured mode."""
    if mode == "baseline":
        return fastpath.disabled()
    if mode == "fast":
        return fastpath.columnar_disabled()
    if mode == "columnar":
        return nullcontext()
    raise ValueError(f"unknown perf mode {mode!r}")


# ----------------------------------------------------------------------
def _run_phases(
    P: int, n: int, l: int, seed: int, *, mode: str
) -> tuple[dict[str, dict[str, Any]], list, dict[str, Any]]:
    """One full measured run: build, LCP, insert, delete, subtree, and
    the E10 skew flood, all timed, with a metrics snapshot per phase.

    Returns ``(phases, snapshots, results)`` where ``snapshots`` and
    ``results`` are the parity evidence (compared across modes).
    """
    reset_id_counters()
    keys = uniform_keys(n, l, seed=seed)
    queries = uniform_keys(n, l, seed=seed + 1)
    extra = uniform_keys(max(2, n // 2), l, seed=seed + 2)
    flood = single_range_flood(n, l, seed=seed + 3)
    prefixes = [k.prefix(min(12, l)) for k in keys[: min(32, n)]]

    phases: dict[str, dict[str, Any]] = {}
    snapshots: list = []
    results: dict[str, Any] = {}

    with _mode_context(mode):
        system = PIMSystem(P, seed=1)

        def timed(name, ops, fn):
            before = system.snapshot()
            t0 = time.perf_counter()
            out = fn()
            dt = time.perf_counter() - t0
            after = system.snapshot()
            d = after.delta(before)
            phases[name] = {
                "seconds": round(dt, 6),
                "ops": ops,
                "ops_per_sec": round(ops / max(dt, 1e-9), 1),
                "metrics": {
                    "io_rounds": d.io_rounds,
                    "io_time": d.io_time,
                    "communication": d.total_communication,
                    "pim_time": d.pim_time,
                },
            }
            snapshots.append(after)
            return out

        holder: dict[str, PIMTrie] = {}

        def _build() -> None:
            holder["trie"] = PIMTrie(
                system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
            )

        timed("build", n, _build)
        trie = holder["trie"]
        results["lcp"] = timed("lcp", n, lambda: trie.lcp_batch(queries))
        timed("insert", len(extra), lambda: trie.insert_batch(extra))
        half = extra[: len(extra) // 2]
        timed("delete", len(half), lambda: trie.delete_batch(half))
        results["subtree_sizes"] = timed(
            "subtree",
            len(prefixes),
            lambda: [len(r) for r in trie.subtree_batch(prefixes)],
        )
        results["skew_flood"] = timed(
            "skew_flood", n, lambda: trie.lcp_batch(flood)
        )

    return phases, snapshots, results


def _median(values: list[float]) -> float:
    s = sorted(values)
    m = len(s) // 2
    return s[m] if len(s) % 2 else (s[m - 1] + s[m]) / 2


def _measure(
    P: int, n: int, l: int, seed: int, *, mode: str, reps: int
) -> tuple[dict[str, dict[str, Any]], list, dict[str, Any]]:
    """``reps`` timed runs per phase: min wall-clock is the headline
    figure, the median is reported alongside as the noise estimate
    (counts are rep-invariant — any drift raises)."""
    first: Optional[dict[str, dict[str, Any]]] = None
    first_snaps: list = []
    first_results: dict[str, Any] = {}
    secs: dict[str, list[float]] = {}
    for rep in range(reps):
        phases, snaps, results = _run_phases(P, n, l, seed, mode=mode)
        if first is None:
            first, first_snaps, first_results = phases, snaps, results
        elif snaps != first_snaps or results != first_results:
            raise AssertionError(
                f"non-deterministic metrics across reps (P={P}, n={n}, "
                f"l={l}, mode={mode}, rep={rep})"
            )
        for name, ph in phases.items():
            secs.setdefault(name, []).append(ph["seconds"])
    assert first is not None
    for name, ph in first.items():
        ss = secs[name]
        mn, med = min(ss), _median(ss)
        ph["seconds"] = round(mn, 6)
        ph["ops_per_sec"] = round(ph["ops"] / max(mn, 1e-9), 1)
        ph["seconds_median"] = round(med, 6)
        ph["ops_per_sec_median"] = round(ph["ops"] / max(med, 1e-9), 1)
    return first, first_snaps, first_results


# ----------------------------------------------------------------------
def bench_config(
    P: int, n: int, l: int, seed: int = 7, reps: int = 1
) -> dict[str, Any]:
    """Benchmark one (P, n, l) point in all three modes and prove parity.

    Raises ``AssertionError`` if any two of the columnar, fast, and
    baseline runs disagree on any per-phase :class:`MetricsSnapshot` or
    any query result.
    """
    runs: dict[str, tuple] = {}
    for mode in MODES:
        runs[mode] = _measure(P, n, l, seed, mode=mode, reps=reps)
    _, ref_snaps, ref_res = runs["columnar"]
    for mode in ("fast", "baseline"):
        _, snaps, res = runs[mode]
        if snaps != ref_snaps or res != ref_res:
            raise AssertionError(
                f"metric-parity violation at P={P}, n={n}, l={l}: "
                f"columnar and {mode} runs disagree on metrics or results"
            )

    def ratio(num_ph, den_ph):
        return {
            name: round(
                num_ph[name]["seconds"] / max(den_ph[name]["seconds"], 1e-9),
                3,
            )
            for name in den_ph
        }

    base_ph = runs["baseline"][0]
    fast_ph = runs["fast"][0]
    col_ph = runs["columnar"][0]
    speedup = ratio(base_ph, col_ph)  # columnar vs unoptimized reference
    fast_speedup = ratio(base_ph, fast_ph)  # object fast path vs reference
    columnar_vs_fast = ratio(fast_ph, col_ph)  # the columnar tier alone
    return {
        "P": P,
        "n": n,
        "l": l,
        "seed": seed,
        "reps": reps,
        "columnar": col_ph,
        "fast": fast_ph,
        "baseline": base_ph,
        "speedup": speedup,
        "fast_speedup": fast_speedup,
        "columnar_vs_fast": columnar_vs_fast,
        "lcp_speedup": speedup["lcp"],
        "lcp_columnar_vs_fast": columnar_vs_fast["lcp"],
        "metric_parity": True,
        "metrics": ref_snaps[-1].as_dict(),
    }


def run_bench(
    out: Optional[str] = "BENCH_wallclock.json",
    smoke: bool = False,
    reps: Optional[int] = None,
    quiet: bool = False,
) -> dict[str, Any]:
    """Run the full harness (or the CI smoke) and write the JSON report.

    The report contains both modes side by side — the baseline is the
    pre-optimization path, recorded in the same file as required for
    the speedup claim to be self-contained.
    """
    reps = reps if reps is not None else (1 if smoke else 3)
    if reps < 1:
        raise ValueError("reps must be >= 1")
    cfg = SMOKE if smoke else HEADLINE

    def say(msg: str) -> None:
        if not quiet:
            print(msg, flush=True)

    say(f"headline: P={cfg['P']} n={cfg['n']} l={cfg['l']} reps={reps} "
        f"(columnar + fast + baseline)...")
    head = bench_config(**cfg, reps=reps)
    head["meets_2x_target"] = head["lcp_speedup"] >= 2.0
    say(f"  lcp: {head['columnar']['lcp']['ops_per_sec']:.0f} ops/s "
        f"columnar vs {head['fast']['lcp']['ops_per_sec']:.0f} fast vs "
        f"{head['baseline']['lcp']['ops_per_sec']:.0f} baseline "
        f"({head['lcp_speedup']:.2f}x total, "
        f"{head['lcp_columnar_vs_fast']:.2f}x over fast), metric parity OK")

    report: dict[str, Any] = {
        "bench": "wallclock",
        "command": "python -m repro perf" + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "headline": head,
    }

    if not smoke:
        sweep: list[dict[str, Any]] = []
        base = {"P": 16, "n": 1024, "l": 128}
        seen: set[tuple[int, int, int]] = set()
        for dim, values in (
            ("P", (8, 16, 32)),
            ("n", (512, 1024, 2048)),
            ("l", (64, 128, 256)),
        ):
            for v in values:
                c = dict(base)
                c[dim] = v
                key = (c["P"], c["n"], c["l"])
                if key in seen:
                    continue
                seen.add(key)
                point = bench_config(**c, reps=1)
                say(f"  sweep P={c['P']:>2} n={c['n']:>4} l={c['l']:>3}: "
                    f"lcp {point['lcp_speedup']:.2f}x")
                sweep.append(point)
        report["sweep"] = sweep

    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        say(f"wrote {out}")
    return report


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_wallclock",
        description="Wall-clock perf harness (fast vs baseline, with "
        "metric-parity proof)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (~seconds, headline point only)",
    )
    parser.add_argument(
        "--out", default="BENCH_wallclock.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="wall-clock reps per mode; min and median are reported "
        "(default: 3, smoke: 1)",
    )
    parser.add_argument(
        "--check-floor", metavar="RECORDED_JSON", default=None,
        help="perf-regression guard: exit 1 unless this run's columnar "
        "batched-LCP ops/sec stays at or above the fastpath ops/sec "
        "recorded in RECORDED_JSON (the committed BENCH_wallclock.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    report = run_bench(out=args.out, smoke=args.smoke, reps=args.reps)
    head = report["headline"]
    if not args.smoke and not head["meets_2x_target"]:
        print(
            f"WARNING: lcp speedup {head['lcp_speedup']:.2f}x below the "
            "2x target",
            file=sys.stderr,
        )
    if args.check_floor:
        return check_floor(report, args.check_floor)
    return 0


def check_floor(report: dict, recorded_path: str) -> int:
    """Perf-regression guard shared by the CLI entry points.

    Returns 0 when this run's columnar batched-LCP ops/sec is at or
    above the *fastpath* ops/sec recorded in ``recorded_path`` (the
    committed ``BENCH_wallclock.json``) — i.e. the columnar core must
    never regress below what the object fast path achieved on the
    machine that recorded the baseline — and 1 otherwise.
    """
    recorded = json.loads(Path(recorded_path).read_text())
    floor = recorded["headline"]["fast"]["lcp"]["ops_per_sec"]
    got = report["headline"]["columnar"]["lcp"]["ops_per_sec"]
    if got < floor:
        print(
            f"FAIL: columnar batched-LCP {got:.0f} ops/s dropped below "
            f"the recorded fastpath floor {floor:.0f} ops/s "
            f"({recorded_path})",
            file=sys.stderr,
        )
        return 1
    print(f"floor check OK: columnar lcp {got:.0f} ops/s >= recorded "
          f"fastpath floor {floor:.0f} ops/s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
