"""repro.serve — a continuous-batching index service over the PIM simulator.

Turns the batch-library :class:`repro.PIMTrie` into a simulated online
service: timestamped client operations (:mod:`~repro.serve.trace`)
queue at a host frontend, a continuous-batching scheduler
(:mod:`~repro.serve.scheduler`) coalesces them into mixed-op epochs
under a pluggable policy, an epoch executor
(:mod:`~repro.serve.server`) maps each epoch onto the existing batch
APIs and demultiplexes replies, and a service-metrics layer
(:mod:`~repro.serve.slo`) reports latency percentiles, throughput, and
queue behaviour alongside the PIM Model counters.

Entry points: ``python -m repro serve [--smoke]`` and
``benchmarks/perf/bench_serve.py`` (→ ``BENCH_serve.json``).
"""

from .scheduler import (
    AdaptiveController,
    ContinuousBatchingScheduler,
    SchedDecision,
    SchedulerPolicy,
    policy_from_name,
)
from .server import EpochServer, decide_cut, replay_direct
from .slo import (
    OP_FAILED,
    CompletedOp,
    EpochRecord,
    ServiceReport,
    latency_stats,
    percentile,
)
from .trace import Operation, Trace, make_trace, trace_from_stream

__all__ = [
    "AdaptiveController",
    "ContinuousBatchingScheduler",
    "SchedDecision",
    "SchedulerPolicy",
    "policy_from_name",
    "EpochServer",
    "decide_cut",
    "replay_direct",
    "OP_FAILED",
    "CompletedOp",
    "EpochRecord",
    "ServiceReport",
    "latency_stats",
    "percentile",
    "Operation",
    "Trace",
    "make_trace",
    "trace_from_stream",
]
