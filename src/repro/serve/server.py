"""Epoch executor: replay an online trace against a :class:`PIMTrie`.

:class:`EpochServer` runs a discrete-event loop over a :class:`Trace`:
arrivals join the scheduler's queue (subject to admission control),
the policy decides when to cut an epoch, and each epoch is mapped onto
the existing ``PIMTrie`` batch APIs.  Inside an epoch, ops are executed
as *consecutive same-kind segments in arrival order* — LCP and Subtree
segments call ``lcp_batch``/``subtree_batch``, Insert/Delete segments
call ``insert_batch``/``delete_batch`` — so the server never reorders
a read past a write.  Combined with the scheduler's prefix-only epoch
cutting this yields the equivalence guarantee: replaying any trace
through the server produces exactly the answers of applying the same
ops directly to a ``PIMTrie`` in arrival order
(:func:`replay_direct` is that reference implementation).

**Service model.**  The simulated service time of an epoch is derived
from the PIM Model metrics it actually consumed:

    ``service = round_time * io_rounds + word_time * io_time``

i.e. a fixed per-round overhead (CPU↔PIM latency) plus a per-word
transfer cost on the round's critical path.  The defaults (1.0, 0.001)
make the per-round term dominant at small batches — precisely the
regime where coalescing more ops per epoch amortizes rounds, which is
the trade-off the batching policies navigate.

Replies are demultiplexed back to per-op :class:`CompletedOp` records
stamped with launch/completion times and three latency readings
(simulated units, IO rounds, wall-clock); see :mod:`repro.serve.slo`.
"""

from __future__ import annotations

import time as _time
from typing import Any, Optional, Sequence

from ..core import PIMTrie
from ..pim import MetricsSnapshot
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .slo import CompletedOp, EpochRecord, ServiceReport
from .trace import Operation, Trace

__all__ = ["EpochServer", "replay_direct"]


def _segments(batch: Sequence[Operation]) -> list[tuple[str, list[Operation]]]:
    """Split a batch into maximal consecutive same-kind runs."""
    out: list[tuple[str, list[Operation]]] = []
    for op in batch:
        if out and out[-1][0] == op.kind:
            out[-1][1].append(op)
        else:
            out.append((op.kind, [op]))
    return out


def _execute_segment(trie: PIMTrie, kind: str, ops: list[Operation]) -> list[Any]:
    """Run one same-kind segment through the matching batch API."""
    if kind == "lcp":
        return trie.lcp_batch([o.key for o in ops])
    if kind == "insert":
        trie.insert_batch([o.key for o in ops], [o.value for o in ops])
        return [True] * len(ops)
    if kind == "delete":
        trie.delete_batch([o.key for o in ops])
        return [True] * len(ops)
    if kind == "subtree":
        return trie.subtree_batch([o.key for o in ops])
    raise ValueError(f"unknown op kind {kind!r}")


class EpochServer:
    """Continuous-batching service frontend over one :class:`PIMTrie`."""

    def __init__(
        self,
        trie: PIMTrie,
        policy: SchedulerPolicy,
        *,
        round_time: float = 1.0,
        word_time: float = 0.001,
    ):
        if round_time < 0 or word_time < 0:
            raise ValueError("service-model coefficients must be >= 0")
        self.trie = trie
        self.system = trie.system
        self.policy = policy
        self.round_time = round_time
        self.word_time = word_time

    # ------------------------------------------------------------------
    def service_time(self, delta: MetricsSnapshot) -> float:
        """Simulated duration of an epoch from its PIM metrics delta."""
        return self.round_time * delta.io_rounds + self.word_time * delta.io_time

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ServiceReport:
        """Drive the full event loop over ``trace``; returns the report."""
        ops = trace.ops
        n = len(ops)
        policy = self.policy
        sched = ContinuousBatchingScheduler(policy)

        completed: list[CompletedOp] = []
        epochs: list[EpochRecord] = []
        rounds_at_admit: dict[int, int] = {}
        wall_at_admit: dict[int, float] = {}
        cum_rounds = 0
        cum_wall = 0.0
        free_at = 0.0  # when the server finishes its current epoch
        i = 0  # next unprocessed arrival
        before_all = self.system.snapshot()

        def admit(op: Operation) -> None:
            nonlocal i
            if sched.admit(op):
                rounds_at_admit[op.seq] = cum_rounds
                wall_at_admit[op.seq] = cum_wall
            i += 1

        while i < n or sched.pending:
            if not sched.pending:
                # idle: jump the clock to the next arrival
                admit(ops[i])
                continue

            head_t = sched.head_arrival()
            earliest = max(free_at, head_t)
            deadline = head_t + policy.max_wait
            # decide the launch time, admitting the arrivals that land
            # before it (in arrival order, so admission control sees the
            # queue exactly as a client would)
            while True:
                if sched.full():
                    launch = max(free_at, sched.fill_arrival())
                    break
                target = max(earliest, deadline)
                if i < n and ops[i].time <= target:
                    admit(ops[i])
                    continue
                if i < n:
                    # no further arrival lands before the deadline
                    launch = target
                else:
                    # stream exhausted: the queue may still hold ops
                    # with future arrival times (admission is lazy), so
                    # honor the deadline — but waiting past the last
                    # queued arrival buys nothing
                    launch = max(earliest, min(deadline, sched.pending[-1].time))
                break
            while i < n and ops[i].time <= launch:
                admit(ops[i])

            depth = len(sched.pending)
            batch = sched.take_epoch(launch)
            assert batch, "scheduler cut an empty epoch"

            before = self.system.snapshot()
            t0 = _time.perf_counter()
            replies: list[Any] = []
            kinds: list[str] = []
            for kind, seg in _segments(batch):
                kinds.append(kind)
                replies.extend(_execute_segment(self.trie, kind, seg))
            wall = _time.perf_counter() - t0
            delta = self.system.snapshot().delta(before)

            service = self.service_time(delta)
            completion = launch + service
            free_at = completion
            cum_rounds += delta.io_rounds
            cum_wall += wall
            epochs.append(
                EpochRecord(
                    index=len(epochs), launch=launch, service=service,
                    completion=completion, size=len(batch),
                    kinds=tuple(kinds), queue_depth=depth,
                    io_rounds=delta.io_rounds, io_time=delta.io_time,
                    communication=delta.total_communication,
                    pim_time=delta.pim_time, wall_seconds=wall,
                )
            )
            for op, reply in zip(batch, replies):
                completed.append(
                    CompletedOp(
                        seq=op.seq, client_id=op.client_id, kind=op.kind,
                        arrival=op.time, launch=launch,
                        completion=completion, epoch=len(epochs) - 1,
                        reply=reply,
                        latency_rounds=cum_rounds - rounds_at_admit[op.seq],
                        wall_seconds=cum_wall - wall_at_admit[op.seq],
                    )
                )

        metrics = self.system.snapshot().delta(before_all)
        return ServiceReport(
            policy=policy.describe(),
            trace=trace.name,
            num_ops=n,
            completed=completed,
            dropped=len(sched.dropped),
            epochs=epochs,
            metrics=metrics,
            round_time=self.round_time,
            word_time=self.word_time,
            extra={"max_batch": policy.max_batch},
        )


# ----------------------------------------------------------------------
def replay_direct(
    trie: PIMTrie, ops: Sequence[Operation]
) -> list[tuple[int, Any]]:
    """Reference semantics: apply ``ops`` to ``trie`` in order.

    Maximal same-kind runs are executed as single batch calls — the
    finest batching that still respects arrival order.  Returns
    ``(seq, reply)`` pairs; the equivalence tests assert the server
    produces identical replies (and identical final index state) under
    every scheduler policy.
    """
    out: list[tuple[int, Any]] = []
    for kind, seg in _segments(list(ops)):
        replies = _execute_segment(trie, kind, seg)
        out.extend((op.seq, r) for op, r in zip(seg, replies))
    return out
