"""Epoch executor: replay an online trace against a :class:`PIMTrie`.

:class:`EpochServer` runs a discrete-event loop over a :class:`Trace`:
arrivals join the scheduler's queue (subject to admission control),
the policy decides when to cut an epoch, and each epoch is mapped onto
the existing ``PIMTrie`` batch APIs.  Inside an epoch, ops are executed
as *consecutive same-kind segments in arrival order* — LCP and Subtree
segments call ``lcp_batch``/``subtree_batch``, Insert/Delete segments
call ``insert_batch``/``delete_batch`` — so the server never reorders
a read past a write.  Combined with the scheduler's prefix-only epoch
cutting this yields the equivalence guarantee: replaying any trace
through the server produces exactly the answers of applying the same
ops directly to a ``PIMTrie`` in arrival order
(:func:`replay_direct` is that reference implementation).

**Service model.**  Epoch work splits into *phases*.  The module-round
phase is derived from the PIM Model metrics the epoch actually
consumed:

    ``module = round_time * io_rounds + word_time * io_time``

i.e. a fixed per-round overhead (CPU↔PIM latency) plus a per-word
transfer cost on the round's critical path.  The host-CPU phases —
*prep* (segment grouping, arena setup, ordered-snapshot prewarm) and
*assemble* (reply demultiplexing) — cost ``prep_time`` / ``asm_time``
simulated units per op.  The defaults (1.0, 0.001, 0, 0) make the
per-round term dominant at small batches — precisely the regime where
coalescing more ops per epoch amortizes rounds, which is the trade-off
the batching policies navigate.

**Pipelined BSP** (``pipelined=True``).  Sequentially, an epoch runs
cut → prep → rounds → assemble before the next cut.  Pipelined, the
host and the modules are separate resources on the simulated clock: the
host preps epoch k+1 while the modules crunch epoch k's rounds (the
classic two-stage pipeline, depth one per stage — epoch k leaves the
host stage the moment the modules accept it, which is when the host may
cut k+1).  Reply assembly is carried by the reply path and charged to
completion latency only.  The **hazard rule**: prep reads trie state
(it groups against, and prewarms snapshots of, the current index), so
an epoch that *mutates* the trie — writes, fault recovery, adaptive
maintenance — drains the pipeline: the next cut waits for its full
completion.  Read-only epochs overlap freely, because state before and
after them is identical.  Epoch *composition* may therefore differ from
the sequential schedule, but every schedule cuts arrival-order
prefixes, so replies stay byte-identical to :func:`replay_direct`.

Replies are demultiplexed back to per-op :class:`CompletedOp` records
stamped with launch/completion times and three latency readings
(simulated units, IO rounds, wall-clock); see :mod:`repro.serve.slo`.

**Fault tolerance.**  When the underlying system carries a
:class:`repro.faults.FaultInjector`, segments that die with
:class:`RoundAborted` are recovered (:func:`repro.faults.recover`) and
retried with exponential backoff charged to the epoch's service time;
after ``max_retries`` the segment's ops complete with the
:data:`~repro.serve.slo.OP_FAILED` sentinel instead of stalling the
queue.  Epochs additionally start with a *proactive* recovery sweep
(crashed modules are rebuilt before new work launches), straggler
penalties accrued by the injector are folded into epoch service time,
and while the server is degraded admission can shed load via the
policy's ``degraded_capacity``.  All of it is inert on a fault-free
system: the fault path adds one attribute check per epoch.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Optional, Sequence

from ..core import PIMTrie
from ..faults import RoundAborted, recover
from ..obs.tracer import maybe_span
from ..pim import MetricsSnapshot
from .scheduler import (
    AdaptiveController,
    ContinuousBatchingScheduler,
    SchedulerPolicy,
)
from .slo import OP_FAILED, CompletedOp, EpochRecord, ServiceReport
from .trace import Operation, Trace

__all__ = [
    "EpochServer",
    "decide_cut",
    "execute_segment",
    "replay_direct",
    "segments",
]

#: op kinds that mutate trie state (their epochs drain the pipeline)
WRITE_KINDS = frozenset(("insert", "delete"))
#: op kinds answered from the host-side ordered snapshot (prewarmable)
ORDERED_KINDS = frozenset(("pred", "succ", "range", "count", "topk"))


def segments(batch: Sequence[Operation]) -> list[tuple[str, list[Operation]]]:
    """Split a batch into maximal consecutive same-kind runs.

    Public because every epoch executor (the single-trie
    :class:`EpochServer`, the cluster router in :mod:`repro.cluster`)
    shares this decomposition — it is what makes epoch replay order-
    preserving: reads never cross writes.
    """
    out: list[tuple[str, list[Operation]]] = []
    for op in batch:
        if out and out[-1][0] == op.kind:
            out[-1][1].append(op)
        else:
            out.append((op.kind, [op]))
    return out


def execute_segment(trie: Any, kind: str, ops: list[Operation]) -> list[Any]:
    """Run one same-kind segment through the matching batch API.

    ``trie`` is duck-typed: anything exposing the four batch methods
    (``PIMTrie``, a baseline index, a :class:`repro.cluster.PIMCluster`)
    works.
    """
    if kind == "lcp":
        return trie.lcp_batch([o.key for o in ops])
    if kind == "insert":
        trie.insert_batch([o.key for o in ops], [o.value for o in ops])
        return [True] * len(ops)
    if kind == "delete":
        trie.delete_batch([o.key for o in ops])
        return [True] * len(ops)
    if kind == "subtree":
        return trie.subtree_batch([o.key for o in ops])
    if kind == "pred":
        return trie.predecessor_batch([o.key for o in ops])
    if kind == "succ":
        return trie.successor_batch([o.key for o in ops])
    if kind == "count":
        return trie.prefix_count_batch([o.key for o in ops])
    if kind in ("range", "topk"):
        # the per-op limit / k rides in the value (range ops carry
        # ``(hi, limit)``, topk ops carry ``k``); same-parameter ops are
        # grouped onto one batch call each.  Grouping is invisible in
        # the metrics — ordered reads are host-side and run zero PIM
        # rounds regardless of how they are batched.
        out: list[Any] = [None] * len(ops)
        groups: dict[Any, list[int]] = {}
        for i, o in enumerate(ops):
            extra = o.value[1] if kind == "range" else o.value
            groups.setdefault(extra, []).append(i)
        for extra, idxs in groups.items():
            if kind == "range":
                bounds = [(ops[i].key, ops[i].value[0]) for i in idxs]
                sub = trie.range_batch(bounds, limit=extra)
            else:
                sub = trie.topk_batch([ops[i].key for i in idxs], extra)
            for j, i in enumerate(idxs):
                out[i] = sub[j]
        return out
    raise ValueError(f"unknown op kind {kind!r}")


def decide_cut(
    sched: ContinuousBatchingScheduler,
    ops: Sequence[Operation],
    idx: list[int],
    ready: float,
    admit: Callable[[Operation], None],
) -> float:
    """Pick the next epoch's cut time; admit the arrivals preceding it.

    Shared by :class:`EpochServer` and ``repro.cluster.ClusterService``
    so both event loops implement one audited admission boundary.
    ``idx`` is a one-element list holding the next-unprocessed-arrival
    index (``admit`` advances it); ``ready`` is the earliest time this
    executor could start an epoch (previous completion when sequential,
    pipeline-stage availability when pipelined).

    Admission is *lazy* — arrivals are pulled from the trace only as
    the decision needs them — but the boundary is exact: every arrival
    with ``time <= cut`` is admitted (in arrival order, so admission
    control sees the queue exactly as a client would) before the cut
    extracts the batch, and none after.  An arrival at exactly the cut
    instant is therefore admitted, matching an eager reference loop that
    processes events in timestamp order with arrivals first at ties
    (see tests/test_serve_admission.py).
    """
    n = len(ops)
    head_t = sched.head_arrival()
    earliest = max(ready, head_t)
    deadline = head_t + sched.max_wait
    while True:
        if sched.full():
            cut = max(ready, sched.fill_arrival())
            break
        target = max(earliest, deadline)
        if idx[0] < n and ops[idx[0]].time <= target:
            admit(ops[idx[0]])
            continue
        if idx[0] < n:
            # no further arrival lands before the deadline
            cut = target
        else:
            # stream exhausted: the queue may still hold ops with
            # future arrival times (admission is lazy), so honor the
            # deadline — but waiting past the last queued arrival buys
            # nothing
            cut = max(earliest, min(deadline, sched.pending[-1].time))
        break
    while idx[0] < n and ops[idx[0]].time <= cut:
        admit(ops[idx[0]])
    return cut


class EpochServer:
    """Continuous-batching service frontend over one :class:`PIMTrie`."""

    def __init__(
        self,
        trie: PIMTrie,
        policy: SchedulerPolicy,
        *,
        round_time: float = 1.0,
        word_time: float = 0.001,
        max_retries: int = 4,
        retry_backoff: float = 0.5,
        adapt: Optional[Any] = None,
        pipelined: bool = False,
        prep_time: float = 0.0,
        asm_time: float = 0.0,
    ):
        if round_time < 0 or word_time < 0:
            raise ValueError("service-model coefficients must be >= 0")
        if max_retries < 0 or retry_backoff < 0:
            raise ValueError("retry parameters must be >= 0")
        if prep_time < 0 or asm_time < 0:
            raise ValueError("host-phase costs must be >= 0")
        self.trie = trie
        self.system = trie.system
        self.policy = policy
        self.round_time = round_time
        self.word_time = word_time
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.pipelined = pipelined
        self.prep_time = prep_time
        self.asm_time = asm_time
        #: optional repro.adapt AdaptiveController stepped once per
        #: epoch (after the segments run, inside the epoch's metrics
        #: window, so maintenance rounds are billed to the epoch that
        #: triggered them)
        self.adapt = adapt

    # ------------------------------------------------------------------
    def service_time(self, delta: MetricsSnapshot) -> float:
        """Simulated module-round duration of an epoch's metrics delta."""
        return self.round_time * delta.io_rounds + self.word_time * delta.io_time

    # ------------------------------------------------------------------
    def _degraded(self) -> bool:
        """Is the index currently healing (crashed or dirty state)?"""
        inj = getattr(self.system, "faults", None)
        return bool(
            (inj is not None and inj.crashed)
            or getattr(self.trie, "_dirty_structure", False)
        )

    def _prewarm(self, batch: list[Operation]) -> None:
        """Host-prep: build the ordered snapshot ahead of the rounds.

        Only for batches with ordered reads and **no writes** — then the
        snapshot the first ordered segment would have built mid-epoch is
        built in prep instead, against the identical trie state, so the
        epoch's metrics delta is unchanged (the build is version-cached
        and charged exactly once either way).
        """
        if any(op.kind in WRITE_KINDS for op in batch):
            return
        if any(op.kind in ORDERED_KINDS for op in batch):
            snap = getattr(self.trie, "ordered_snapshot", None)
            if snap is not None:
                snap()

    def _run_segment(
        self, kind: str, ops: list[Operation], ep: dict
    ) -> list[Any]:
        """Execute one segment, recovering and retrying on aborts.

        Retries are idempotent (every PIMTrie batch op is); backoff and
        recovery are accounted into ``ep`` and the epoch's service time.
        On exhaustion the system is still healed — subsequent segments
        and epochs proceed — but these ops answer :data:`OP_FAILED`.
        """
        attempt = 0
        while True:
            try:
                with maybe_span(
                    self.system, f"segment.{kind}", cat="segment",
                    ops=len(ops),
                ):
                    return execute_segment(self.trie, kind, ops)
            except RoundAborted as e:
                attempt += 1
                ep["causes"].append(e.cause)
                inj = getattr(self.system, "faults", None)
                if inj is not None:
                    inj.stats.retries += 1
                ep["recovery_rounds"] += recover(self.trie)
                if attempt > self.max_retries:
                    ep["failed"] += len(ops)
                    return [OP_FAILED] * len(ops)
                ep["retries"] += 1
                ep["backoff"] += self.retry_backoff * 2.0 ** (attempt - 1)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ServiceReport:
        """Drive the full event loop over ``trace``; returns the report."""
        ops = trace.ops
        n = len(ops)
        policy = self.policy
        sched = ContinuousBatchingScheduler(policy)
        controller = (
            AdaptiveController(policy, sched) if policy.adaptive else None
        )

        completed: list[CompletedOp] = []
        epochs: list[EpochRecord] = []
        rounds_at_admit: dict[int, int] = {}
        wall_at_admit: dict[int, float] = {}
        cum_rounds = 0
        cum_wall = 0.0
        failed_total = 0
        # simulated-clock resources.  Sequential mode uses only
        # host_free (== previous completion).  Pipelined mode: host_free
        # is when the host stage frees up (the previous epoch's rounds
        # began), module_free is when the modules finish their current
        # epoch, hazard_until enforces the write-hazard drain rule: it
        # marks when the last *mutating* epoch's rounds end, and a prep
        # that would read trie state (an ordered-snapshot prewarm) must
        # not start before it.  Prep that only groups the op list reads
        # no index state and overlaps mutating epochs freely.
        host_free = 0.0
        module_free = 0.0
        hazard_until = 0.0
        idx = [0]  # next unprocessed arrival (boxed for decide_cut)
        before_all = self.system.snapshot()

        def admit(op: Operation) -> None:
            if sched.admit(op, degraded=self._degraded()):
                rounds_at_admit[op.seq] = cum_rounds
                wall_at_admit[op.seq] = cum_wall
            idx[0] += 1

        while idx[0] < n or sched.pending:
            if not sched.pending:
                # idle: jump the clock to the next arrival
                admit(ops[idx[0]])
                continue

            # the drain applies only when the upcoming prep will read
            # trie state — i.e. the queue holds ordered-kind ops whose
            # snapshot the prep would prewarm
            reads_state = self.pipelined and any(
                op.kind in ORDERED_KINDS for op in sched.pending
            )
            ready = max(host_free, hazard_until) if reads_state else host_free
            cut = decide_cut(sched, ops, idx, ready, admit)

            depth = len(sched.pending)
            batch = sched.take_epoch(cut)
            assert batch, "scheduler cut an empty epoch"
            prep_dur = self.prep_time * len(batch)
            asm_dur = self.asm_time * len(batch)

            before = self.system.snapshot()
            t0 = _time.perf_counter()
            ep = {"retries": 0, "recovery_rounds": 0, "failed": 0,
                  "backoff": 0.0, "causes": []}
            obs = getattr(self.system, "obs", None)
            ep_span = (
                obs.begin(
                    f"epoch:{len(epochs)}", cat="epoch",
                    size=len(batch), queue_depth=depth,
                )
                if obs is not None
                else None
            )
            mutated = False
            try:
                # ---- host prep phase: segment grouping + (pipelined)
                # ordered-snapshot prewarm against pre-epoch state
                with maybe_span(
                    self.system, "epoch.prep", cat="phase", ops=len(batch)
                ):
                    segs = segments(batch)
                    # prewarm only when this prep provably starts after
                    # every mutating epoch's rounds have finished (an
                    # ordered op admitted *during* the cut decision can
                    # land in a pre-drain batch: then the snapshot is
                    # simply built inside the rounds phase instead,
                    # which serializes after all mutations)
                    if self.pipelined and cut >= hazard_until:
                        self._prewarm(batch)
                # ---- module-round phase: recovery + segments + adapt
                with maybe_span(
                    self.system, "epoch.rounds", cat="phase", ops=len(batch)
                ):
                    # proactive recovery: heal crashes left over from a
                    # previous epoch before launching new work (its
                    # rounds land in this epoch's metrics delta, and
                    # therefore its service time)
                    if self._degraded():
                        ep["recovery_rounds"] += recover(self.trie)
                        mutated = True
                    replies: list[Any] = []
                    kinds: list[str] = []
                    for kind, seg in segs:
                        kinds.append(kind)
                        if kind in WRITE_KINDS:
                            mutated = True
                        replies.extend(self._run_segment(kind, seg, ep))
                    if self.adapt is not None:
                        # adaptive maintenance rides the epoch it reacts
                        # to: its rounds land in this delta and service
                        # time.  An abort mid-maintenance heals like any
                        # other fault — answers are placement-invariant
                        # either way.
                        try:
                            stats = self.adapt.step()
                        except RoundAborted as e:
                            ep["causes"].append(e.cause)
                            ep["recovery_rounds"] += recover(self.trie)
                            mutated = True
                        else:
                            if stats.get("actions"):
                                mutated = True
                # ---- host assemble phase: reply demultiplexing (the
                # zip below); zero metrics delta, costed via asm_time
                with maybe_span(
                    self.system, "epoch.assemble", cat="phase",
                    ops=len(batch),
                ):
                    pass
            finally:
                if ep_span is not None:
                    obs.end(ep_span)
            if ep["recovery_rounds"] or ep["retries"] or ep["failed"]:
                mutated = True  # any recovery path rebuilt state
            wall = _time.perf_counter() - t0
            delta = self.system.snapshot().delta(before)

            inj = getattr(self.system, "faults", None)
            straggle = inj.take_straggle_penalty() if inj is not None else 0.0
            module = (
                self.service_time(delta)
                + straggle * self.round_time
                + ep["backoff"]
            )
            if self.pipelined:
                rounds_start = max(cut + prep_dur, module_free)
                completion = rounds_start + module + asm_dur
                module_free = rounds_start + module
                # the epoch leaves the host stage when the modules
                # accept it; the host may then cut the next epoch
                host_free = rounds_start
                if mutated:
                    # trie state is final when the rounds end (assembly
                    # only shuffles replies) — that is what a
                    # state-reading prep must wait for
                    hazard_until = module_free
            else:
                rounds_start = cut + prep_dur
                completion = rounds_start + module + asm_dur
                host_free = completion
            service = completion - cut
            failed_total += ep["failed"]
            cum_rounds += delta.io_rounds
            cum_wall += wall
            epochs.append(
                EpochRecord(
                    index=len(epochs), launch=cut, service=service,
                    completion=completion, size=len(batch),
                    kinds=tuple(kinds), queue_depth=depth,
                    io_rounds=delta.io_rounds, io_time=delta.io_time,
                    communication=delta.total_communication,
                    pim_time=delta.pim_time, wall_seconds=wall,
                    degraded=bool(
                        ep["causes"] or ep["recovery_rounds"] or straggle > 0
                    ),
                    retries=ep["retries"],
                    recovery_rounds=ep["recovery_rounds"],
                    causes=tuple(ep["causes"]),
                    span_id=ep_span.sid if ep_span is not None else None,
                    prep=prep_dur, asm=asm_dur, rounds_start=rounds_start,
                )
            )
            latencies: list[float] = []
            for op, reply in zip(batch, replies):
                latencies.append(completion - op.time)
                completed.append(
                    CompletedOp(
                        seq=op.seq, client_id=op.client_id, kind=op.kind,
                        arrival=op.time, launch=cut,
                        completion=completion, epoch=len(epochs) - 1,
                        reply=reply,
                        latency_rounds=cum_rounds - rounds_at_admit[op.seq],
                        wall_seconds=cum_wall - wall_at_admit[op.seq],
                        ok=reply is not OP_FAILED,
                    )
                )
            if controller is not None:
                decision = controller.observe(
                    epoch=len(epochs) - 1, cut=cut, queue_depth=depth,
                    size=len(batch), io_rounds=delta.io_rounds,
                    latencies=latencies, prep=prep_dur, rounds=module,
                    asm=asm_dur,
                )
                if decision is not None:
                    # a zero-delta marker span: no rounds run inside, so
                    # span sums stay byte-exact with tracing on
                    with maybe_span(
                        self.system, f"sched.{decision.action}", cat="sched",
                        epoch=decision.epoch, max_wait=decision.max_wait,
                        max_batch=decision.max_batch,
                    ):
                        pass

        metrics = self.system.snapshot().delta(before_all)
        inj = getattr(self.system, "faults", None)
        fault_stats = (
            inj.stats.as_dict()
            if inj is not None and inj.stats.any_faults()
            else {}
        )
        extra: dict[str, Any] = {}
        if self.adapt is not None:
            extra["adapt"] = self.adapt.summary()
        if controller is not None:
            extra["sched"] = controller.summary()
        return ServiceReport(
            policy=policy.describe(),
            trace=trace.name,
            num_ops=n,
            completed=completed,
            dropped=len(sched.dropped),
            epochs=epochs,
            metrics=metrics,
            round_time=self.round_time,
            word_time=self.word_time,
            max_batch=policy.max_batch,
            failed=failed_total,
            faults=fault_stats,
            extra=extra,
            pipelined=self.pipelined,
            prep_time=self.prep_time,
            asm_time=self.asm_time,
        )


# ----------------------------------------------------------------------
def replay_direct(
    trie: PIMTrie, ops: Sequence[Operation]
) -> list[tuple[int, Any]]:
    """Reference semantics: apply ``ops`` to ``trie`` in order.

    Maximal same-kind runs are executed as single batch calls — the
    finest batching that still respects arrival order.  Returns
    ``(seq, reply)`` pairs; the equivalence tests assert the server
    produces identical replies (and identical final index state) under
    every scheduler policy.
    """
    out: list[tuple[int, Any]] = []
    for kind, seg in segments(list(ops)):
        replies = execute_segment(trie, kind, seg)
        out.extend((op.seq, r) for op, r in zip(seg, replies))
    return out
