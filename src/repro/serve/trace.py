"""Client/arrival model for the serve layer.

A :class:`Trace` is an ordered stream of :class:`Operation`s — the ops
logical clients would issue against a running index, each stamped with
a simulated arrival time.  Times live on an abstract clock whose unit
the server's service model shares (see :class:`repro.serve.EpochServer`:
one unit defaults to the cost of one IO round).

Key material and arrival processes come from
:func:`repro.workloads.operation_stream`, so traces inherit the same
seeded determinism and the same skew adversaries (uniform / zipf /
single-range flood) as the batch benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..bits import BitString
from ..workloads import OP_KINDS, operation_stream

__all__ = ["Operation", "Trace", "make_trace", "trace_from_stream"]


@dataclass(frozen=True)
class Operation:
    """One client operation with its simulated arrival time.

    ``seq`` is the global arrival rank and doubles as the reply
    demultiplexing handle: the server returns answers keyed by it.
    """

    seq: int
    client_id: int
    time: float
    kind: str  # one of repro.workloads.OP_KINDS
    key: BitString
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")


class Trace:
    """A time-sorted operation stream plus its generation metadata."""

    def __init__(
        self,
        ops: Sequence[Operation],
        *,
        name: str = "trace",
        params: Optional[dict] = None,
    ):
        self.ops: list[Operation] = sorted(ops, key=lambda o: (o.time, o.seq))
        self.name = name
        self.params = dict(params or {})

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def kind_counts(self) -> dict[str, int]:
        out = {k: 0 for k in OP_KINDS}
        for op in self.ops:
            out[op.kind] += 1
        return out

    def duration(self) -> float:
        """Span of the arrival process (time of the last arrival)."""
        return self.ops[-1].time if self.ops else 0.0

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, n={len(self.ops)}, "
            f"duration={self.duration():.3f})"
        )


def make_trace(
    n: int,
    *,
    num_clients: int = 16,
    length: int = 64,
    mix: Optional[dict[str, float]] = None,
    arrival: str = "poisson",
    rate: float = 2.0,
    burst_factor: float = 8.0,
    kind_corr: float = 0.5,
    skew: str = "uniform",
    subtree_prefix: int = 12,
    range_limit: Optional[int] = 16,
    topk_k: int = 8,
    seed: int = 0,
    name: Optional[str] = None,
) -> Trace:
    """Generate a trace of ``n`` ops from ``num_clients`` logical clients.

    Thin wrapper over :func:`repro.workloads.operation_stream` that
    assigns client ids (uniform over clients, seeded) and records the
    generation parameters on the trace for reports.
    """
    if num_clients < 1:
        raise ValueError("need at least one client")
    raw = operation_stream(
        n, length, mix=mix, arrival=arrival, rate=rate,
        burst_factor=burst_factor, kind_corr=kind_corr, skew=skew,
        subtree_prefix=subtree_prefix, range_limit=range_limit,
        topk_k=topk_k, seed=seed,
    )
    rng = np.random.default_rng(seed + 0x5EEDC)
    clients = rng.integers(num_clients, size=len(raw))
    ops = [
        Operation(
            seq=i, client_id=int(clients[i]), time=t.time,
            kind=t.kind, key=t.key, value=t.value,
        )
        for i, t in enumerate(raw)
    ]
    params = {
        "n": n, "num_clients": num_clients, "length": length,
        "arrival": arrival, "rate": rate, "skew": skew, "seed": seed,
    }
    return Trace(
        ops,
        name=name or f"{arrival}-{skew}-r{rate:g}-s{seed}",
        params=params,
    )


def trace_from_stream(
    timed: Sequence,
    *,
    num_clients: int = 16,
    seed: int = 0,
    name: str = "stream",
    params: Optional[dict] = None,
) -> Trace:
    """Wrap an already-generated :class:`~repro.workloads.TimedOp`
    stream (e.g. the time-varying skew generators
    ``drifting_zipf_stream`` / ``flash_crowd_stream`` /
    ``diurnal_stream``) as a :class:`Trace`, assigning client ids with
    the same seeded idiom as :func:`make_trace`."""
    if num_clients < 1:
        raise ValueError("need at least one client")
    rng = np.random.default_rng(seed + 0x5EEDC)
    clients = rng.integers(num_clients, size=len(timed))
    ops = [
        Operation(
            seq=i, client_id=int(clients[i]), time=t.time,
            kind=t.kind, key=t.key, value=t.value,
        )
        for i, t in enumerate(timed)
    ]
    return Trace(ops, name=name, params=dict(params or {}))
