"""Service-level metrics for the serve layer.

Latency here is *queueing + service* delay on the simulated clock —
the quantity a client of an online index experiences — reported three
ways:

* **simulated time units** — completion − arrival on the trace clock
  (the unit the server's service model defines: by default one unit is
  the per-round overhead of one IO round);
* **IO rounds** — how many BSP rounds the system executed between the
  op's admission and its completion (integer, exactly reproducible, and
  directly comparable to the paper's O(log P) per-batch bounds);
* **wall-clock seconds** — host-process execution time of the epochs
  the op waited through (non-deterministic; excluded from the
  byte-deterministic smoke output).

All percentile math is nearest-rank on sorted values, so reports are
deterministic given deterministic inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Optional, Sequence

from ..pim import MetricsSnapshot

__all__ = [
    "percentile",
    "latency_stats",
    "CompletedOp",
    "EpochRecord",
    "ServiceReport",
    "OP_FAILED",
]


class _OpFailed:
    """Sentinel reply for an op whose segment exhausted its fault
    retries: the client gets an error, not a stale or partial answer."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "OP_FAILED"


OP_FAILED = _OpFailed()

PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    The rank is ``ceil(n * q / 100)`` (clamped to at least 1), computed
    with exact rational arithmetic: a float ``q`` like 99.9 is read at
    its decimal face value (``Fraction(str(q))``), so the ceiling never
    flips on a floating-point rounding artifact the way the old
    ``-(-n * q // 100)`` could.  ``q`` outside [0, 100] (or NaN) raises
    ``ValueError``.
    """
    if isinstance(q, float) and math.isnan(q):
        raise ValueError("percentile q must not be NaN")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    s = sorted(values)
    qf = Fraction(str(q)) if isinstance(q, float) else Fraction(q)
    # ceil(n*q/100) exactly; Fraction.__floordiv__ returns an int
    rank = max(1, -((-qf * len(s)) // 100))
    return s[rank - 1]


def latency_stats(values: Sequence[float]) -> dict[str, float]:
    """p50/p95/p99, mean, and max of a latency sample."""
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    out = {f"p{q}": percentile(values, q) for q in PERCENTILES}
    out["mean"] = sum(values) / len(values)
    out["max"] = max(values)
    return out


@dataclass(frozen=True)
class CompletedOp:
    """Reply record handed back to the op's client."""

    seq: int
    client_id: int
    kind: str
    arrival: float
    launch: float
    completion: float
    epoch: int
    reply: Any
    latency_rounds: int
    wall_seconds: float
    #: False when the reply is :data:`OP_FAILED` (fault retries exhausted)
    ok: bool = True

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass(frozen=True)
class EpochRecord:
    """One coalesced batch as executed on the PIM system."""

    index: int
    launch: float
    service: float
    completion: float
    size: int
    kinds: tuple[str, ...]  # kinds of the consecutive segments executed
    queue_depth: int  # pending ops at launch, before extraction
    io_rounds: int
    io_time: int
    communication: int
    pim_time: int
    wall_seconds: float
    #: fault bookkeeping (all zero/empty on a fault-free run)
    degraded: bool = False  # this epoch saw aborts, recovery, or stragglers
    retries: int = 0  # segment retries inside this epoch
    recovery_rounds: int = 0  # IO rounds spent rebuilding lost state
    causes: tuple[str, ...] = ()  # RoundAborted causes observed
    #: id of this epoch's tracer span (None when tracing is off)
    span_id: Optional[int] = None
    #: pipelined-mode phase bookkeeping (all zero in sequential mode).
    #: ``launch`` is the epoch's *cut* time (ops taken from the queue);
    #: host prep runs [launch, launch+prep), module rounds start at
    #: ``rounds_start`` (>= launch+prep — the module may still be busy
    #: with the previous epoch), and ``completion`` includes ``asm``.
    prep: float = 0.0  # host-CPU prep time (grouping, snapshot prewarm)
    asm: float = 0.0  # host-CPU reply-assembly time
    rounds_start: float = 0.0  # when module rounds actually began


@dataclass
class ServiceReport:
    """Everything a serve run measured, ready for JSON or printing."""

    policy: str
    trace: str
    num_ops: int
    completed: list[CompletedOp]
    dropped: int
    epochs: list[EpochRecord]
    metrics: MetricsSnapshot  # PIM Model delta across all epochs
    round_time: float
    word_time: float
    #: the scheduler policy's batch cap, used as the occupancy denominator
    max_batch: int = 1
    #: two-stage pipelined BSP: host phases of epoch k+1 overlap module
    #: rounds of epoch k (see EpochServer); False = sequential loop
    pipelined: bool = False
    #: per-op host-phase costs used by this run's service model
    prep_time: float = 0.0
    asm_time: float = 0.0
    #: ops whose replies are :data:`OP_FAILED` (fault retries exhausted)
    failed: int = 0
    #: injector counters (``FaultStats.as_dict``); empty = fault-free run
    faults: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Last completion time on the simulated clock."""
        return self.epochs[-1].completion if self.epochs else 0.0

    @property
    def throughput(self) -> float:
        """Completed ops per simulated time unit."""
        mk = self.makespan
        return len(self.completed) / mk if mk > 0 else 0.0

    @property
    def rounds_per_op(self) -> float:
        """IO rounds per completed op — the amortization the batching buys."""
        n = len(self.completed)
        return self.metrics.io_rounds / n if n else 0.0

    def occupancy(self) -> float:
        """Mean epoch fill ratio (size / max allowed batch)."""
        if not self.epochs:
            return 0.0
        cap = max(1, self.max_batch)
        return sum(e.size for e in self.epochs) / (len(self.epochs) * cap)

    @property
    def host_overlap(self) -> float:
        """Total host prep time hidden under earlier epochs' rounds.

        Epoch k's prep occupies ``[launch, launch + prep)`` on the host;
        epoch k-1's module rounds run until ``completion - asm``.  The
        intersection is prep work the pipeline hid behind module time —
        always 0 in sequential mode, where prep only starts after the
        previous epoch fully completed.
        """
        hidden = 0.0
        for prev, cur in zip(self.epochs, self.epochs[1:]):
            prev_rounds_end = prev.completion - prev.asm
            hidden += min(cur.prep, max(0.0, prev_rounds_end - cur.launch))
        return hidden

    def queue_depth_stats(self) -> dict[str, float]:
        depths = [e.queue_depth for e in self.epochs]
        if not depths:
            return {"mean": 0.0, "max": 0.0}
        return {"mean": sum(depths) / len(depths), "max": float(max(depths))}

    # ------------------------------------------------------------------
    # fault / graceful-degradation SLOs
    # ------------------------------------------------------------------
    @property
    def availability(self) -> float:
        """Fraction of completed ops answered successfully."""
        n = len(self.completed)
        if n == 0:
            return 1.0
        return sum(1 for c in self.completed if c.ok) / n

    @property
    def degraded_epochs(self) -> int:
        return sum(1 for e in self.epochs if e.degraded)

    @property
    def total_retries(self) -> int:
        return sum(e.retries for e in self.epochs)

    @property
    def total_recovery_rounds(self) -> int:
        return sum(e.recovery_rounds for e in self.epochs)

    def latency(self) -> dict[str, float]:
        return latency_stats([c.latency for c in self.completed])

    def latency_rounds(self) -> dict[str, float]:
        return latency_stats([float(c.latency_rounds) for c in self.completed])

    def latency_wall(self) -> dict[str, float]:
        return latency_stats([c.wall_seconds for c in self.completed])

    # ------------------------------------------------------------------
    def as_dict(self, *, include_wall: bool = True,
                include_per_module: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "policy": self.policy,
            "trace": self.trace,
            "num_ops": self.num_ops,
            "completed": len(self.completed),
            "dropped": self.dropped,
            "epochs": len(self.epochs),
            "makespan": self.makespan,
            "throughput": self.throughput,
            "rounds_per_op": self.rounds_per_op,
            "occupancy": self.occupancy(),
            "queue_depth": self.queue_depth_stats(),
            "latency": self.latency(),
            "latency_rounds": self.latency_rounds(),
            "round_time": self.round_time,
            "word_time": self.word_time,
            "max_batch": self.max_batch,
            "metrics": self.metrics.as_dict(include_per_module=include_per_module),
        }
        if self.pipelined or self.prep_time or self.asm_time:
            # sequential zero-host-cost runs keep their original output
            # bytes — pipeline fields appear only when the mode is on
            out["pipelined"] = self.pipelined
            out["prep_time"] = self.prep_time
            out["asm_time"] = self.asm_time
            out["host_overlap"] = self.host_overlap
        if self.faults or self.failed:
            # fault-free runs keep their original output bytes — the
            # recovery block appears only when there was something to
            # recover from
            out["failed"] = self.failed
            out["availability"] = self.availability
            out["degraded_epochs"] = self.degraded_epochs
            out["retries"] = self.total_retries
            out["recovery_rounds"] = self.total_recovery_rounds
            out["faults"] = dict(self.faults)
        if include_wall:
            out["latency_wall_seconds"] = self.latency_wall()
            out["wall_seconds_total"] = sum(e.wall_seconds for e in self.epochs)
        out.update(self.extra)
        return out

    # ------------------------------------------------------------------
    def format_summary(self, *, deterministic_only: bool = False) -> str:
        """Human-readable summary; deterministic fields only on request."""
        lat, rnds = self.latency(), self.latency_rounds()
        q = self.queue_depth_stats()
        m = self.metrics
        lines = [
            f"policy {self.policy} on {self.trace}: "
            f"{len(self.completed)}/{self.num_ops} completed, "
            f"{self.dropped} rejected, {len(self.epochs)} epochs",
            f"makespan {self.makespan:.4f} units | throughput "
            f"{self.throughput:.4f} ops/unit | {self.rounds_per_op:.4f} "
            f"IO rounds/op",
            f"batch occupancy {self.occupancy():.4f} | queue depth mean "
            f"{q['mean']:.2f} max {q['max']:.0f}",
            f"latency (units):  p50 {lat['p50']:.4f}  p95 {lat['p95']:.4f}  "
            f"p99 {lat['p99']:.4f}  max {lat['max']:.4f}",
            f"latency (rounds): p50 {rnds['p50']:.0f}  p95 {rnds['p95']:.0f}  "
            f"p99 {rnds['p99']:.0f}  max {rnds['max']:.0f}",
            f"PIM: {m.io_rounds} rounds, io_time {m.io_time}, "
            f"{m.total_communication} words, pim_time {m.pim_time}, "
            f"imbalance {m.traffic_imbalance():.3f}",
        ]
        if self.pipelined or self.prep_time or self.asm_time:
            lines.append(
                f"pipeline: {'on' if self.pipelined else 'off'} | host "
                f"prep/asm {self.prep_time:g}/{self.asm_time:g} per op | "
                f"{self.host_overlap:.4f} units of prep hidden"
            )
        if self.faults or self.failed:
            lines.append(
                f"faults: availability {self.availability:.4f} "
                f"({self.failed} failed), {self.degraded_epochs} degraded "
                f"epochs, {self.total_retries} retries, "
                f"{self.total_recovery_rounds} recovery rounds"
            )
        if not deterministic_only:
            wall = self.latency_wall()
            total = sum(e.wall_seconds for e in self.epochs)
            lines.append(
                f"wall-clock: {total:.3f}s executing, per-op p99 "
                f"{wall['p99'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)
