"""The serve-layer benchmark: arrival rate × batching policy × key skew.

Writes ``BENCH_serve.json``.  Each sweep point builds a fresh resident
index, generates a seeded online trace, replays it through
:class:`EpochServer` under one scheduler policy, and records service
metrics (latency percentiles, throughput, IO rounds per op, batch
occupancy, queue depth) next to the PIM Model metrics — including the
per-module traffic/work arrays, so the balance *distribution* under
each policy is preserved, not just the max/mean ratio.

Three headline measurements:

* **the batching trade-off** — for every (rate, skew) pair, eager vs a
  large max-wait deadline: amortization bought (fewer rounds/op) at a
  tail-latency cost (higher p99) — the continuous-batching bargain;
* **pipelined vs sequential** — the same loaded trace replayed with
  per-op host phase costs, sequential vs two-stage pipelined (host prep
  of epoch k+1 under module rounds of epoch k): answers must stay
  byte-identical (digest check) while makespan and p99 improve;
* **adaptive vs fixed** — the ``adaptive:<target_p99>`` closed-loop
  policy against every fixed policy on the (rounds/op, p99) plane: the
  report records, per (rate, skew) cell, which fixed policies the
  adaptive point *dominates* (≤ in both coordinates, < in one) and
  whether any fixed policy dominates it — the Pareto-frontier claim
  ``--check-floor`` enforces.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from ..core import PIMTrie, PIMTrieConfig
from ..perf import reset_id_counters
from ..pim import PIMSystem
from ..workloads import uniform_keys
from .scheduler import policy_from_name
from .server import EpochServer
from .slo import ServiceReport
from .trace import make_trace

__all__ = [
    "answers_digest",
    "bench_point",
    "check_floor_serve",
    "run_bench_serve",
]

#: Full sweep dimensions.  The rates sit below the single-op service
#: rate (an op alone in an epoch costs a few simulated units), so the
#: eager policy degenerates to tiny epochs and a max-wait deadline has
#: real rounds to amortize — the regime where the batching trade-off
#: is visible rather than swamped by queueing.
RATES = (0.05, 0.25)
SKEWS = ("uniform", "flood")
POLICIES = ("eager", "deadline:20", "deadline:80", "affinity:80")
#: The pair the trade-off is judged on.
TRADEOFF_PAIR = ("eager", "deadline:80")
#: One overload point per skew: arrivals outpace service capacity and a
#: bounded queue sheds load (admission control / backpressure).
OVERLOAD = {"rate": 1.0, "policy_spec": "deadline:20", "queue_capacity": 384}

#: The closed-loop policy the frontier claim is made for: p99 target of
#: 100 simulated units, affinity grouping, max_wait/max_batch steered
#: per epoch from observed queue depth, arrival rate, and latency.
ADAPTIVE_SPEC = "adaptive:100"
#: Pipelined-vs-sequential comparison: loaded rates where epochs queue
#: back-to-back (overlap needs a busy module to hide host work behind)
#: and per-op host-phase costs large enough that hiding them matters.
PIPELINE = {
    "policy_spec": "deadline:20",
    "rates": (0.5, 1.0),
    "prep_time": 0.4,
    "asm_time": 0.1,
}

FULL = {"P": 16, "resident": 1024, "n_ops": 1536, "length": 64}
SMOKE = {"P": 8, "resident": 192, "n_ops": 160, "length": 64, "rate": 0.25}


def answers_digest(report: ServiceReport) -> str:
    """Order-insensitive digest of a run's successful replies.

    Two runs with equal digests answered every (seq, kind) identically
    — the pipelined-vs-sequential equivalence check, reduced to a
    16-hex-char string the JSON report can carry.
    """
    rows = sorted(
        (c.seq, c.kind, c.reply) for c in report.completed if c.ok
    )
    return hashlib.sha256(repr(rows).encode()).hexdigest()[:16]


def bench_point(
    *,
    P: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    skew: str,
    policy_spec: str,
    max_batch: int = 256,
    queue_capacity: Optional[int] = None,
    degraded_capacity: Optional[int] = None,
    pipelined: bool = False,
    prep_time: float = 0.0,
    asm_time: float = 0.0,
    seed: int = 7,
) -> dict[str, Any]:
    """Run one (rate, skew, policy) sweep point on a fresh index."""
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(resident, length, seed=seed + 1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
    )
    trace = make_trace(
        n_ops, length=length, rate=rate, skew=skew, seed=seed,
        name=f"{skew}-r{rate:g}",
    )
    policy = policy_from_name(
        policy_spec, max_batch=max_batch, queue_capacity=queue_capacity,
        degraded_capacity=degraded_capacity,
    )
    server = EpochServer(
        trie, policy,
        pipelined=pipelined, prep_time=prep_time, asm_time=asm_time,
    )
    report = server.run(trace)
    out = report.as_dict(include_wall=True, include_per_module=True)
    out.update({"P": P, "resident": resident, "rate": rate, "skew": skew,
                "policy_spec": policy_spec, "seed": seed,
                "answers_digest": answers_digest(report)})
    return out


def _dominates(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Pareto dominance on the (rounds/op, p99 latency) plane."""
    ar, br = a["rounds_per_op"], b["rounds_per_op"]
    ap, bp = a["latency"]["p99"], b["latency"]["p99"]
    return ar <= br and ap <= bp and (ar < br or ap < bp)


def run_bench_serve(
    out: Optional[str] = "BENCH_serve.json",
    smoke: bool = False,
    quiet: bool = False,
) -> dict[str, Any]:
    """Run the sweep (or a smoke-sized subset) and write the report."""
    cfg = SMOKE if smoke else FULL
    rates = (cfg.get("rate", 0.25),) if smoke else RATES
    skews = ("uniform", "flood") if not smoke else ("uniform",)
    policies = TRADEOFF_PAIR if smoke else POLICIES
    base = {k: cfg[k] for k in ("P", "resident", "n_ops", "length")}

    def say(msg: str) -> None:
        if not quiet:
            print(msg, flush=True)

    points: list[dict[str, Any]] = []
    for skew in skews:
        for rate in rates:
            for spec in policies:
                pt = bench_point(
                    rate=rate, skew=skew, policy_spec=spec, **base
                )
                say(
                    f"  {skew:<8} rate={rate:<4g} {spec:<12} "
                    f"rounds/op {pt['rounds_per_op']:.3f}  "
                    f"p99 {pt['latency']['p99']:.2f}  "
                    f"occupancy {pt['occupancy']:.3f}"
                )
                points.append(pt)

    # overload: arrivals outpace service capacity, the bounded queue
    # sheds load, and the report records how many ops were rejected
    overload: list[dict[str, Any]] = []
    if not smoke:
        for skew in skews:
            pt = bench_point(
                rate=OVERLOAD["rate"], skew=skew,
                policy_spec=OVERLOAD["policy_spec"],
                queue_capacity=OVERLOAD["queue_capacity"], **base,
            )
            say(
                f"  {skew:<8} OVERLOAD rate={OVERLOAD['rate']:g} "
                f"cap={OVERLOAD['queue_capacity']} "
                f"dropped {pt['dropped']}/{pt['num_ops']}"
            )
            overload.append(pt)

    # the batching trade-off, judged per (rate, skew)
    tradeoffs: list[dict[str, Any]] = []
    by_key = {
        (p["skew"], p["rate"], p["policy_spec"]): p for p in points
    }
    for skew in skews:
        for rate in rates:
            eager = by_key.get((skew, rate, TRADEOFF_PAIR[0]))
            slow = by_key.get((skew, rate, TRADEOFF_PAIR[1]))
            if eager is None or slow is None:
                continue
            tradeoffs.append({
                "skew": skew,
                "rate": rate,
                "policies": list(TRADEOFF_PAIR),
                "rounds_per_op": [eager["rounds_per_op"], slow["rounds_per_op"]],
                "p99_latency": [eager["latency"]["p99"], slow["latency"]["p99"]],
                "amortization_improved":
                    slow["rounds_per_op"] < eager["rounds_per_op"],
                "tail_latency_degraded":
                    slow["latency"]["p99"] > eager["latency"]["p99"],
            })

    # pipelined vs sequential on the same loaded trace: answers must be
    # byte-identical (digest), makespan/p99 should improve
    pipeline: list[dict[str, Any]] = []
    pipe_rates = (PIPELINE["rates"][-1],) if smoke else PIPELINE["rates"]
    pipe_base = {
        "policy_spec": PIPELINE["policy_spec"],
        "prep_time": PIPELINE["prep_time"],
        "asm_time": PIPELINE["asm_time"],
    }
    for skew in skews:
        for rate in pipe_rates:
            seq = bench_point(rate=rate, skew=skew, **pipe_base, **base)
            pip = bench_point(
                rate=rate, skew=skew, pipelined=True, **pipe_base, **base
            )
            comp = {
                "skew": skew,
                "rate": rate,
                **pipe_base,
                "answers_match":
                    seq["answers_digest"] == pip["answers_digest"],
                "answers_digest": pip["answers_digest"],
                "makespan": [seq["makespan"], pip["makespan"]],
                "makespan_speedup": (
                    seq["makespan"] / pip["makespan"]
                    if pip["makespan"] else 1.0
                ),
                "p99_latency":
                    [seq["latency"]["p99"], pip["latency"]["p99"]],
                "throughput": [seq["throughput"], pip["throughput"]],
                "host_overlap": pip["host_overlap"],
            }
            say(
                f"  {skew:<8} rate={rate:<4g} PIPELINE  "
                f"answers {'==' if comp['answers_match'] else '!='}  "
                f"speedup {comp['makespan_speedup']:.3f}x  "
                f"p99 {seq['latency']['p99']:.1f} -> "
                f"{pip['latency']['p99']:.1f}  "
                f"overlap {comp['host_overlap']:.1f}"
            )
            pipeline.append(comp)

    # adaptive vs every fixed policy on the (rounds/op, p99) plane
    adaptive: list[dict[str, Any]] = []
    for skew in skews:
        for rate in rates:
            apt = bench_point(
                rate=rate, skew=skew, policy_spec=ADAPTIVE_SPEC, **base
            )
            fixed = {
                spec: by_key[(skew, rate, spec)]
                for spec in policies
                if (skew, rate, spec) in by_key
            }
            dominates = sorted(
                spec for spec, p in fixed.items() if _dominates(apt, p)
            )
            dominated_by = sorted(
                spec for spec, p in fixed.items() if _dominates(p, apt)
            )
            cell = {
                "skew": skew,
                "rate": rate,
                "policy_spec": ADAPTIVE_SPEC,
                "rounds_per_op": apt["rounds_per_op"],
                "p99_latency": apt["latency"]["p99"],
                "fixed": {
                    spec: [p["rounds_per_op"], p["latency"]["p99"]]
                    for spec, p in fixed.items()
                },
                "dominates": dominates,
                "dominated_by": dominated_by,
                "on_frontier": bool(dominates) and not dominated_by,
                "sched": apt.get("sched"),
            }
            say(
                f"  {skew:<8} rate={rate:<4g} ADAPTIVE  "
                f"rounds/op {apt['rounds_per_op']:.3f}  "
                f"p99 {apt['latency']['p99']:.2f}  "
                f"dominates {dominates or '[]'}  "
                f"dominated_by {dominated_by or '[]'}"
            )
            adaptive.append(cell)

    report = {
        "bench": "serve",
        "command": "python benchmarks/perf/bench_serve.py"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "config": cfg,
        "points": points,
        "overload": overload,
        "tradeoffs": tradeoffs,
        "pipeline": pipeline,
        "adaptive": adaptive,
        "tradeoff_shown_everywhere": all(
            t["amortization_improved"] and t["tail_latency_degraded"]
            for t in tradeoffs
        ) and bool(tradeoffs),
        "pipeline_answers_match_everywhere": all(
            c["answers_match"] for c in pipeline
        ) and bool(pipeline),
        "adaptive_on_frontier_everywhere": all(
            c["on_frontier"] for c in adaptive
        ) and bool(adaptive),
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        say(f"wrote {out}")
    return report


def check_floor_serve(report: dict[str, Any]) -> int:
    """Enforce the serve-bench floors on a freshly produced report.

    Every quantity checked is computed on the simulated clock, so the
    gate is deterministic — no recorded-file comparison, the claims are
    re-proved on each run:

    * the batching trade-off shows in every (rate, skew) cell;
    * pipelined answers are digest-identical to sequential everywhere;
    * the adaptive policy sits on the (rounds/op, p99) Pareto frontier
      in every cell: it dominates at least one fixed policy and no
      fixed policy dominates it.

    Returns 0 when all floors hold, 1 otherwise (failures on stderr).
    """
    import sys

    failures: list[str] = []
    if not report.get("tradeoff_shown_everywhere"):
        failures.append(
            "batching trade-off not shown in every (rate, skew) cell"
        )
    if not report.get("pipeline_answers_match_everywhere"):
        bad = [
            f"({c['skew']}, r={c['rate']:g})"
            for c in report.get("pipeline", [])
            if not c["answers_match"]
        ]
        failures.append(
            "pipelined answers diverge from sequential: "
            + (", ".join(bad) if bad else "no pipeline section")
        )
    for c in report.get("pipeline", []):
        if c["makespan_speedup"] < 1.0:
            failures.append(
                f"pipeline slower than sequential at "
                f"({c['skew']}, r={c['rate']:g}): "
                f"{c['makespan_speedup']:.3f}x"
            )
    if not report.get("adaptive_on_frontier_everywhere"):
        bad = [
            f"({c['skew']}, r={c['rate']:g}) dominates={c['dominates']} "
            f"dominated_by={c['dominated_by']}"
            for c in report.get("adaptive", [])
            if not c["on_frontier"]
        ]
        failures.append(
            "adaptive policy off the Pareto frontier: "
            + ("; ".join(bad) if bad else "no adaptive section")
        )
    for msg in failures:
        print(f"FAIL bench_serve floor: {msg}", file=sys.stderr)
    return 1 if failures else 0
