"""The serve-layer benchmark: arrival rate × batching policy × key skew.

Writes ``BENCH_serve.json``.  Each sweep point builds a fresh resident
index, generates a seeded online trace, replays it through
:class:`EpochServer` under one scheduler policy, and records service
metrics (latency percentiles, throughput, IO rounds per op, batch
occupancy, queue depth) next to the PIM Model metrics — including the
per-module traffic/work arrays, so the balance *distribution* under
each policy is preserved, not just the max/mean ratio.

The headline measurement is the batching trade-off: for every
(rate, skew) pair the report compares the eager policy against a large
max-wait deadline and records whether the deadline improved IO-round
amortization (fewer rounds per op) while degrading tail latency
(higher p99) — the continuous-batching bargain, measured on both the
uniform and the adversarially skewed workload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from ..core import PIMTrie, PIMTrieConfig
from ..perf import reset_id_counters
from ..pim import PIMSystem
from ..workloads import uniform_keys
from .scheduler import policy_from_name
from .server import EpochServer
from .trace import make_trace

__all__ = ["bench_point", "run_bench_serve"]

#: Full sweep dimensions.  The rates sit below the single-op service
#: rate (an op alone in an epoch costs a few simulated units), so the
#: eager policy degenerates to tiny epochs and a max-wait deadline has
#: real rounds to amortize — the regime where the batching trade-off
#: is visible rather than swamped by queueing.
RATES = (0.05, 0.25)
SKEWS = ("uniform", "flood")
POLICIES = ("eager", "deadline:20", "deadline:80", "affinity:80")
#: The pair the trade-off is judged on.
TRADEOFF_PAIR = ("eager", "deadline:80")
#: One overload point per skew: arrivals outpace service capacity and a
#: bounded queue sheds load (admission control / backpressure).
OVERLOAD = {"rate": 1.0, "policy_spec": "deadline:20", "queue_capacity": 384}

FULL = {"P": 16, "resident": 1024, "n_ops": 1536, "length": 64}
SMOKE = {"P": 8, "resident": 192, "n_ops": 160, "length": 64, "rate": 0.25}


def bench_point(
    *,
    P: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    skew: str,
    policy_spec: str,
    max_batch: int = 256,
    queue_capacity: Optional[int] = None,
    seed: int = 7,
) -> dict[str, Any]:
    """Run one (rate, skew, policy) sweep point on a fresh index."""
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(resident, length, seed=seed + 1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
    )
    trace = make_trace(
        n_ops, length=length, rate=rate, skew=skew, seed=seed,
        name=f"{skew}-r{rate:g}",
    )
    policy = policy_from_name(
        policy_spec, max_batch=max_batch, queue_capacity=queue_capacity
    )
    server = EpochServer(trie, policy)
    report = server.run(trace)
    out = report.as_dict(include_wall=True, include_per_module=True)
    out.update({"P": P, "resident": resident, "rate": rate, "skew": skew,
                "policy_spec": policy_spec, "seed": seed})
    return out


def run_bench_serve(
    out: Optional[str] = "BENCH_serve.json",
    smoke: bool = False,
    quiet: bool = False,
) -> dict[str, Any]:
    """Run the sweep (or a smoke-sized subset) and write the report."""
    cfg = SMOKE if smoke else FULL
    rates = (cfg.get("rate", 0.25),) if smoke else RATES
    skews = ("uniform", "flood") if not smoke else ("uniform",)
    policies = TRADEOFF_PAIR if smoke else POLICIES
    base = {k: cfg[k] for k in ("P", "resident", "n_ops", "length")}

    def say(msg: str) -> None:
        if not quiet:
            print(msg, flush=True)

    points: list[dict[str, Any]] = []
    for skew in skews:
        for rate in rates:
            for spec in policies:
                pt = bench_point(
                    rate=rate, skew=skew, policy_spec=spec, **base
                )
                say(
                    f"  {skew:<8} rate={rate:<4g} {spec:<12} "
                    f"rounds/op {pt['rounds_per_op']:.3f}  "
                    f"p99 {pt['latency']['p99']:.2f}  "
                    f"occupancy {pt['occupancy']:.3f}"
                )
                points.append(pt)

    # overload: arrivals outpace service capacity, the bounded queue
    # sheds load, and the report records how many ops were rejected
    overload: list[dict[str, Any]] = []
    if not smoke:
        for skew in skews:
            pt = bench_point(
                rate=OVERLOAD["rate"], skew=skew,
                policy_spec=OVERLOAD["policy_spec"],
                queue_capacity=OVERLOAD["queue_capacity"], **base,
            )
            say(
                f"  {skew:<8} OVERLOAD rate={OVERLOAD['rate']:g} "
                f"cap={OVERLOAD['queue_capacity']} "
                f"dropped {pt['dropped']}/{pt['num_ops']}"
            )
            overload.append(pt)

    # the batching trade-off, judged per (rate, skew)
    tradeoffs: list[dict[str, Any]] = []
    by_key = {
        (p["skew"], p["rate"], p["policy_spec"]): p for p in points
    }
    for skew in skews:
        for rate in rates:
            eager = by_key.get((skew, rate, TRADEOFF_PAIR[0]))
            slow = by_key.get((skew, rate, TRADEOFF_PAIR[1]))
            if eager is None or slow is None:
                continue
            tradeoffs.append({
                "skew": skew,
                "rate": rate,
                "policies": list(TRADEOFF_PAIR),
                "rounds_per_op": [eager["rounds_per_op"], slow["rounds_per_op"]],
                "p99_latency": [eager["latency"]["p99"], slow["latency"]["p99"]],
                "amortization_improved":
                    slow["rounds_per_op"] < eager["rounds_per_op"],
                "tail_latency_degraded":
                    slow["latency"]["p99"] > eager["latency"]["p99"],
            })
    report = {
        "bench": "serve",
        "command": "python benchmarks/perf/bench_serve.py"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "config": cfg,
        "points": points,
        "overload": overload,
        "tradeoffs": tradeoffs,
        "tradeoff_shown_everywhere": all(
            t["amortization_improved"] and t["tail_latency_degraded"]
            for t in tradeoffs
        ) and bool(tradeoffs),
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        say(f"wrote {out}")
    return report
