"""Continuous-batching scheduler: queueing, admission, epoch cutting.

The scheduler owns the pending queue between epochs and implements the
pluggable batching policy:

* **max_batch** — hard cap on ops per epoch;
* **max_wait** — deadline batching: once the server is free and the
  queue is non-empty, launch no later than ``head.arrival + max_wait``
  (0 = eager continuous batching: serve whatever queued while the
  previous epoch ran);
* **affinity** — single-op-type epochs: an epoch takes the maximal
  same-kind *prefix run* of the queue.  Crucially, every policy only
  ever takes a prefix of the (arrival-ordered) queue, so operations are
  never reordered — which is what makes server answers provably equal
  to a direct sequential replay (see tests/test_serve.py);
* **queue_capacity** — bounded-queue admission control: an arrival that
  finds the queue full is rejected (backpressure surfaced to the
  client) rather than enqueued.  Capacity must be at least
  ``max_batch`` so that drop accounting stays exact under the lazy
  arrival processing the event loop uses;
* **degraded_capacity** — graceful degradation under faults: while the
  server reports itself degraded (crashed modules awaiting recovery, or
  an interrupted structural rebuild), admission uses this tighter queue
  bound instead of ``queue_capacity``, shedding load so the backlog
  stays small while capacity is reduced.  ``None`` (default) disables
  the distinction.

The time-advancing event loop itself lives in
:class:`repro.serve.server.EpochServer`; this module is pure queue
logic so policies can be unit-tested without an index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from .trace import Operation

__all__ = ["SchedulerPolicy", "ContinuousBatchingScheduler", "policy_from_name"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs of the continuous-batching scheduler (see module docstring)."""

    name: str
    max_batch: int = 256
    max_wait: float = 0.0
    affinity: bool = False
    queue_capacity: Optional[int] = None
    degraded_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < self.max_batch:
            raise ValueError(
                "queue_capacity must be >= max_batch (admission accounting "
                "relies on the queue never overflowing while a batch fills)"
            )
        if self.degraded_capacity is not None:
            if self.degraded_capacity < 1:
                raise ValueError("degraded_capacity must be >= 1")
            if (
                self.queue_capacity is not None
                and self.degraded_capacity > self.queue_capacity
            ):
                raise ValueError(
                    "degraded_capacity must not exceed queue_capacity "
                    "(degradation sheds load, it does not add headroom)"
                )

    def describe(self) -> str:
        cap = "inf" if self.queue_capacity is None else str(self.queue_capacity)
        deg = (
            ""
            if self.degraded_capacity is None
            else f", degraded={self.degraded_capacity}"
        )
        return (
            f"{self.name}(max_batch={self.max_batch}, "
            f"max_wait={self.max_wait:g}, affinity={self.affinity}, "
            f"capacity={cap}{deg})"
        )


def policy_from_name(
    spec: str,
    *,
    max_batch: int = 256,
    queue_capacity: Optional[int] = None,
) -> SchedulerPolicy:
    """Parse ``"eager"``, ``"deadline:<max_wait>"``, ``"affinity[:<max_wait>]"``."""
    base, _, arg = spec.partition(":")
    if base == "eager":
        if arg:
            raise ValueError("eager takes no argument")
        return SchedulerPolicy(
            "eager", max_batch=max_batch, queue_capacity=queue_capacity
        )
    if base == "deadline":
        wait = float(arg) if arg else 1.0
        return SchedulerPolicy(
            f"deadline:{wait:g}", max_batch=max_batch, max_wait=wait,
            queue_capacity=queue_capacity,
        )
    if base == "affinity":
        wait = float(arg) if arg else 0.0
        name = f"affinity:{wait:g}" if arg else "affinity"
        return SchedulerPolicy(
            name, max_batch=max_batch, max_wait=wait, affinity=True,
            queue_capacity=queue_capacity,
        )
    raise ValueError(f"unknown policy {spec!r}")


class ContinuousBatchingScheduler:
    """The pending queue plus the policy's admission and cutting rules."""

    def __init__(self, policy: SchedulerPolicy):
        self.policy = policy
        self.pending: deque[Operation] = deque()
        self.dropped: list[Operation] = []
        self.admitted = 0

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admit(self, op: Operation, *, degraded: bool = False) -> bool:
        """Enqueue ``op``; reject (and record) it if the queue is full.

        While ``degraded`` (server healing from faults) the policy's
        ``degraded_capacity`` bound applies instead, if configured.
        """
        cap = self.policy.queue_capacity
        if degraded and self.policy.degraded_capacity is not None:
            cap = self.policy.degraded_capacity
        if cap is not None and len(self.pending) >= cap:
            self.dropped.append(op)
            return False
        self.pending.append(op)
        self.admitted += 1
        return True

    # ------------------------------------------------------------------
    # launch-decision inputs
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pending)

    def head_arrival(self) -> float:
        return self.pending[0].time

    def full(self) -> bool:
        return len(self.pending) >= self.policy.max_batch

    def fill_arrival(self) -> float:
        """Arrival time of the op that completed the current batch.

        The queue is arrival-ordered, so this is the earliest moment the
        batch-size trigger can fire.
        """
        return self.pending[self.policy.max_batch - 1].time

    # ------------------------------------------------------------------
    # epoch cutting
    # ------------------------------------------------------------------
    def take_epoch(self, now: float) -> list[Operation]:
        """Cut the next epoch at simulated time ``now``.

        Takes a prefix of the queue: at most ``max_batch`` ops, only ops
        that have arrived by ``now`` (causality), and — under affinity —
        only the leading run of one op kind.
        """
        p = self.policy
        out: list[Operation] = []
        kind = self.pending[0].kind if self.pending else None
        while self.pending and len(out) < p.max_batch:
            head = self.pending[0]
            if head.time > now:
                break
            if p.affinity and head.kind != kind:
                break
            out.append(self.pending.popleft())
        return out
