"""Continuous-batching scheduler: queueing, admission, epoch cutting.

The scheduler owns the pending queue between epochs and implements the
pluggable batching policy:

* **max_batch** — hard cap on ops per epoch;
* **max_wait** — deadline batching: once the server is free and the
  queue is non-empty, launch no later than ``head.arrival + max_wait``
  (0 = eager continuous batching: serve whatever queued while the
  previous epoch ran);
* **affinity** — single-op-type epochs: an epoch takes the maximal
  same-kind *prefix run* of the queue.  Crucially, every policy only
  ever takes a prefix of the (arrival-ordered) queue, so operations are
  never reordered — which is what makes server answers provably equal
  to a direct sequential replay (see tests/test_serve.py);
* **queue_capacity** — bounded-queue admission control: an arrival that
  finds the queue full is rejected (backpressure surfaced to the
  client) rather than enqueued.  Capacity must be at least
  ``max_batch`` so that drop accounting stays exact under the lazy
  arrival processing the event loop uses;
* **degraded_capacity** — graceful degradation under faults: while the
  server reports itself degraded (crashed modules awaiting recovery, or
  an interrupted structural rebuild), admission uses this tighter queue
  bound instead of ``queue_capacity``, shedding load so the backlog
  stays small while capacity is reduced.  ``None`` (default) disables
  the distinction;
* **adaptive** — closed-loop control: instead of fixed knobs, an
  :class:`AdaptiveController` re-tunes ``max_wait`` / ``max_batch``
  between epochs from the server's per-phase observations, steering the
  op-latency p99 toward ``target_p99`` while harvesting IO-round
  amortization whenever the tail has slack (the continuous-batching
  discipline of iteration-level inference schedulers).  The policy's
  ``max_wait`` / ``max_batch`` are the controller's *initial* knobs;
  the live values live on the scheduler (``sched.max_wait`` /
  ``sched.max_batch``).

The time-advancing event loop itself lives in
:class:`repro.serve.server.EpochServer`; this module is pure queue
logic so policies can be unit-tested without an index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Optional

from .slo import percentile
from .trace import Operation

__all__ = [
    "SchedulerPolicy",
    "ContinuousBatchingScheduler",
    "AdaptiveController",
    "SchedDecision",
    "policy_from_name",
]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs of the continuous-batching scheduler (see module docstring)."""

    name: str
    max_batch: int = 256
    max_wait: float = 0.0
    affinity: bool = False
    queue_capacity: Optional[int] = None
    degraded_capacity: Optional[int] = None
    #: closed-loop mode: the scheduler's live knobs are re-tuned each
    #: epoch by an AdaptiveController chasing ``target_p99``
    adaptive: bool = False
    target_p99: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < self.max_batch:
            raise ValueError(
                "queue_capacity must be >= max_batch (admission accounting "
                "relies on the queue never overflowing while a batch fills)"
            )
        if self.degraded_capacity is not None:
            if self.degraded_capacity < 1:
                raise ValueError("degraded_capacity must be >= 1")
            if (
                self.queue_capacity is not None
                and self.degraded_capacity > self.queue_capacity
            ):
                raise ValueError(
                    "degraded_capacity must not exceed queue_capacity "
                    "(degradation sheds load, it does not add headroom)"
                )
        if self.adaptive and self.target_p99 <= 0:
            raise ValueError("adaptive policies need target_p99 > 0")
        if not self.adaptive and self.target_p99:
            raise ValueError("target_p99 only applies to adaptive policies")

    def describe(self) -> str:
        cap = "inf" if self.queue_capacity is None else str(self.queue_capacity)
        deg = (
            ""
            if self.degraded_capacity is None
            else f", degraded={self.degraded_capacity}"
        )
        tgt = f", target_p99={self.target_p99:g}" if self.adaptive else ""
        return (
            f"{self.name}(max_batch={self.max_batch}, "
            f"max_wait={self.max_wait:g}, affinity={self.affinity}, "
            f"capacity={cap}{deg}{tgt})"
        )

    def spec(self) -> str:
        """The parseable policy spec this policy round-trips through.

        ``policy_from_name(p.spec(), max_batch=p.max_batch,
        queue_capacity=p.queue_capacity) == p`` for every policy the
        parser can produce (``max_batch`` / ``queue_capacity`` are
        keyword inputs, not part of the spec string).
        """
        if self.adaptive:
            base = f"adaptive:{self.target_p99:g}"
        elif self.affinity:
            base = f"affinity:{self.max_wait:g}" if self.max_wait else "affinity"
        elif self.max_wait:
            base = f"deadline:{self.max_wait:g}"
        else:
            base = "eager"
        if self.degraded_capacity is not None:
            base += f"@deg={self.degraded_capacity}"
        return base


def policy_from_name(
    spec: str,
    *,
    max_batch: int = 256,
    queue_capacity: Optional[int] = None,
    degraded_capacity: Optional[int] = None,
) -> SchedulerPolicy:
    """Parse a scheduler policy spec.

    Accepted forms: ``"eager"``, ``"deadline:<max_wait>"``,
    ``"affinity[:<max_wait>]"``, ``"adaptive[:<target_p99>]"`` — each
    optionally suffixed with ``"@deg=<n>"`` to set
    ``degraded_capacity`` (the graceful-degradation admission bound),
    e.g. ``"deadline:20@deg=8"``.  The ``degraded_capacity`` keyword is
    the programmatic equivalent; the suffix wins if both are given.
    """
    base, _, suffix = spec.partition("@")
    if suffix:
        key, _, val = suffix.partition("=")
        if key != "deg" or not val:
            raise ValueError(
                f"unknown policy suffix {suffix!r} (expected 'deg=<n>')"
            )
        degraded_capacity = int(val)
    name, _, arg = base.partition(":")
    kw: dict = {
        "max_batch": max_batch,
        "queue_capacity": queue_capacity,
        "degraded_capacity": degraded_capacity,
    }
    if name == "eager":
        if arg:
            raise ValueError("eager takes no argument")
        return SchedulerPolicy("eager", **kw)
    if name == "deadline":
        wait = float(arg) if arg else 1.0
        return SchedulerPolicy(
            f"deadline:{wait:g}", max_wait=wait, **kw
        )
    if name == "affinity":
        wait = float(arg) if arg else 0.0
        return SchedulerPolicy(
            f"affinity:{wait:g}" if arg else "affinity",
            max_wait=wait, affinity=True, **kw
        )
    if name == "adaptive":
        target = float(arg) if arg else 50.0
        # affinity grouping rides along: homogeneous epochs are
        # strictly cheaper on the trie (same rounds/op at lower tail),
        # so the controller tunes (max_wait, max_batch) on top of the
        # best fixed cutting rule.  Initial deadline = target/2 — under
        # the target from the first epoch, converging from below.
        return SchedulerPolicy(
            f"adaptive:{target:g}", adaptive=True, target_p99=target,
            affinity=True, max_wait=target / 2, **kw
        )
    raise ValueError(f"unknown policy {spec!r}")


class ContinuousBatchingScheduler:
    """The pending queue plus the policy's admission and cutting rules.

    ``max_batch`` / ``max_wait`` are the *live* knobs the event loop
    consults; they start at the policy's values and stay there for
    fixed policies.  Under an adaptive policy the controller re-tunes
    them between epochs via :meth:`set_knobs`.
    """

    def __init__(self, policy: SchedulerPolicy):
        self.policy = policy
        self.max_batch = policy.max_batch
        self.max_wait = policy.max_wait
        self.pending: deque[Operation] = deque()
        self.dropped: list[Operation] = []
        self.admitted = 0

    # ------------------------------------------------------------------
    # knob control (adaptive policies)
    # ------------------------------------------------------------------
    def set_knobs(
        self,
        *,
        max_wait: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        """Re-tune the live knobs (clamped to the policy's invariants)."""
        if max_wait is not None:
            self.max_wait = max(0.0, max_wait)
        if max_batch is not None:
            mb = max(1, max_batch)
            if self.policy.queue_capacity is not None:
                mb = min(mb, self.policy.queue_capacity)
            self.max_batch = mb

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admit(self, op: Operation, *, degraded: bool = False) -> bool:
        """Enqueue ``op``; reject (and record) it if the queue is full.

        While ``degraded`` (server healing from faults) the policy's
        ``degraded_capacity`` bound applies instead, if configured.
        """
        cap = self.policy.queue_capacity
        if degraded and self.policy.degraded_capacity is not None:
            cap = self.policy.degraded_capacity
        if cap is not None and len(self.pending) >= cap:
            self.dropped.append(op)
            return False
        self.pending.append(op)
        self.admitted += 1
        return True

    # ------------------------------------------------------------------
    # launch-decision inputs
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pending)

    def head_arrival(self) -> float:
        return self.pending[0].time

    def full(self) -> bool:
        return len(self.pending) >= self.max_batch

    def fill_arrival(self) -> float:
        """Arrival time of the op that completed the current batch.

        The queue is arrival-ordered, so this is the earliest moment the
        batch-size trigger can fire.
        """
        return self.pending[self.max_batch - 1].time

    # ------------------------------------------------------------------
    # epoch cutting
    # ------------------------------------------------------------------
    def take_epoch(self, now: float) -> list[Operation]:
        """Cut the next epoch at simulated time ``now``.

        Takes a prefix of the queue: at most ``max_batch`` ops, only ops
        that have arrived by ``now`` (causality), and — under affinity —
        only the leading run of one op kind.
        """
        p = self.policy
        out: list[Operation] = []
        kind = self.pending[0].kind if self.pending else None
        while self.pending and len(out) < self.max_batch:
            head = self.pending[0]
            if head.time > now:
                break
            if p.affinity and head.kind != kind:
                break
            out.append(self.pending.popleft())
        return out


# ----------------------------------------------------------------------
# closed-loop control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedDecision:
    """One knob change the adaptive controller committed."""

    epoch: int
    action: str  # "tighten" | "relax" | "widen"
    max_wait: float
    max_batch: int
    p99: float  # windowed op-latency p99 that triggered the decision
    rounds_per_op: float  # rounds/op EMA at decision time

    def as_dict(self) -> dict:
        return asdict(self)


class AdaptiveController:
    """Closed-loop deadline/batch tuner for ``adaptive:<target_p99>``.

    Fed one observation per epoch — the cut time, queue depth at the
    cut, the epoch's per-phase times on the simulated clock (host prep,
    module rounds, reply assembly: the same quantities the
    ``epoch.prep`` / ``epoch.rounds`` / ``epoch.assemble`` spans carry,
    see ``repro.obs.phase_self_times``), the IO rounds consumed, and
    the latencies of the ops it completed — the controller steers the
    windowed op-latency p99 toward ``target_p99`` with two coupled
    knobs:

    * **deadline feedback** — p99 above target for ``patience``
      consecutive epochs → *tighten* (``max_wait`` × 0.6); p99 below
      ``low_fraction * target`` for ``patience`` epochs → *relax*
      (``max_wait`` × 1.5, floored at a few per-op service times so the
      first relaxation already coalesces real work, capped at
      2 × target — waiting past the target cannot keep p99 under it).
      Every committed decision is followed by ``cooldown`` quiet epochs
      (hysteresis: the window must re-fill with post-decision latencies
      before the controller trusts its signal again).
    * **size-trigger slaving** — each epoch, ``max_batch`` is re-slaved
      to ``arrival_rate_ema × max_wait`` (clamped): the batch the
      arrival stream fills in about one deadline.  This converts the
      deadline policy into a fill-or-deadline trigger, which is what
      harvests variance: a burst fills the batch early and launches
      with low waiting, a lull falls back to the deadline — the same
      rounds/op at a lower tail than any pure deadline.

    All inputs are simulated-clock quantities the server computes
    itself, so runs are deterministic and identical with or without a
    tracer attached.
    """

    def __init__(
        self,
        policy: SchedulerPolicy,
        sched: ContinuousBatchingScheduler,
        *,
        window: int = 64,
        patience: int = 2,
        cooldown: int = 2,
        tighten_factor: float = 0.6,
        relax_factor: float = 1.5,
        low_fraction: float = 0.75,
        ema_alpha: float = 0.2,
    ):
        if not policy.adaptive:
            raise ValueError("AdaptiveController needs an adaptive policy")
        self.policy = policy
        self.sched = sched
        self.target = policy.target_p99
        self.wait_cap = 2.0 * self.target
        self.window = window
        self.patience = patience
        self.cooldown = cooldown
        self.tighten_factor = tighten_factor
        self.relax_factor = relax_factor
        self.low_fraction = low_fraction
        self.ema_alpha = ema_alpha
        self._lat: deque[float] = deque(maxlen=window)
        self.arrival_rate_ema: Optional[float] = None
        self.rounds_per_op_ema: Optional[float] = None
        self.service_per_op_ema: Optional[float] = None
        self._last_cut: Optional[float] = None
        self._high = 0
        self._low = 0
        self._quiet = 0
        self.decisions: list[SchedDecision] = []

    # ------------------------------------------------------------------
    def _ema(self, old: Optional[float], new: float) -> float:
        a = self.ema_alpha
        return new if old is None else a * new + (1 - a) * old

    def _slave_batch(self) -> None:
        """Re-slave the size trigger to the deadline (see class doc)."""
        lam = self.arrival_rate_ema
        if lam is None or lam <= 0:
            return
        mb = max(2, round(lam * max(self.sched.max_wait, 1.0)))
        self.sched.set_knobs(max_batch=min(mb, self.policy.max_batch))

    def observe(
        self,
        *,
        epoch: int,
        cut: float,
        queue_depth: int,
        size: int,
        io_rounds: int,
        latencies: list,
        prep: float = 0.0,
        rounds: float = 0.0,
        asm: float = 0.0,
    ) -> Optional[SchedDecision]:
        """Digest one epoch; returns the committed decision, if any."""
        self._lat.extend(latencies)
        if self._last_cut is not None and cut > self._last_cut:
            self.arrival_rate_ema = self._ema(
                self.arrival_rate_ema, size / (cut - self._last_cut)
            )
        self._last_cut = cut
        if size > 0:
            self.rounds_per_op_ema = self._ema(
                self.rounds_per_op_ema, io_rounds / size
            )
            self.service_per_op_ema = self._ema(
                self.service_per_op_ema, (prep + rounds + asm) / size
            )
        self._slave_batch()
        if self._quiet > 0:
            self._quiet -= 1
            return None
        p99 = percentile(list(self._lat), 99)
        if p99 > self.target:
            self._high += 1
            self._low = 0
        elif p99 < self.low_fraction * self.target:
            self._low += 1
            self._high = 0
        else:
            self._high = self._low = 0

        action = None
        if self._high >= self.patience:
            self.sched.set_knobs(
                max_wait=self.sched.max_wait * self.tighten_factor
            )
            action = "tighten"
        elif self._low >= self.patience:
            # floor: a deadline shorter than a few per-op service times
            # cannot coalesce anything worth waiting for
            floor = 4.0 * (self.service_per_op_ema or 1.0)
            wait = max(floor, self.sched.max_wait * self.relax_factor)
            self.sched.set_knobs(max_wait=min(self.wait_cap, wait))
            action = "relax"
        if action is None:
            return None
        self._slave_batch()
        self._high = self._low = 0
        self._quiet = self.cooldown
        d = SchedDecision(
            epoch=epoch,
            action=action,
            max_wait=self.sched.max_wait,
            max_batch=self.sched.max_batch,
            p99=p99,
            rounds_per_op=self.rounds_per_op_ema or 0.0,
        )
        self.decisions.append(d)
        return d

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Report block for ``ServiceReport.extra['sched']``."""
        return {
            "target_p99": self.target,
            "decisions": [d.as_dict() for d in self.decisions],
            "final_max_wait": self.sched.max_wait,
            "final_max_batch": self.sched.max_batch,
            "arrival_rate_ema": self.arrival_rate_ema,
            "rounds_per_op_ema": self.rounds_per_op_ema,
        }
