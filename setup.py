"""Thin shim so editable installs work offline (no wheel/PEP 660 available)."""
from setuptools import setup

setup()
