"""E14c — hash-family ablation: modular rolling hash vs CRC-style
carryless hash (§4.4 lists both as binary-associatively-incremental).

Both families must produce identical *answers* (the hash only routes
comparisons); the experiment records their respective PIM work so the
choice is visibly a constant-factor implementation detail, as the paper
treats it.
"""

from __future__ import annotations

import pytest

from conftest import measure
from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.bits import BitString, CarrylessHasher, IncrementalHasher
from repro.workloads import uniform_keys

P = 8
N = 256


@pytest.mark.parametrize("kind", ["modular", "carryless"])
def test_end_to_end_per_family(benchmark, kind):
    def run():
        keys = uniform_keys(N, 64, seed=700)
        queries = keys[: N // 2] + uniform_keys(N // 2, 64, seed=701)
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(
            system,
            PIMTrieConfig(num_modules=P, hash_kind=kind),
            keys=keys,
        )
        res, m = measure(system, trie.lcp_batch, queries)
        return res, m

    res, m = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E14c] hash_kind={kind:<10} rounds={m.io_rounds} "
        f"words={m.total_communication} pim_work={m.pim_work}"
    )
    _RESULTS[kind] = res
    if len(_RESULTS) == 2:
        assert _RESULTS["modular"] == _RESULTS["carryless"]


_RESULTS: dict = {}


def test_raw_hash_throughput(benchmark):
    """Relative hashing cost of the two families (CPU-side, Lemma 4.4)."""

    def run():
        import time

        keys = uniform_keys(500, 512, seed=702)
        out = {}
        for name, hasher in (
            ("modular", IncrementalHasher(seed=1)),
            ("carryless", CarrylessHasher(seed=1)),
        ):
            t0 = time.perf_counter()
            digests = [hasher.hash(k) for k in keys]
            out[name] = (time.perf_counter() - t0, len({d.digest for d in digests}))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E14c] hashing 500 x 512-bit keys:")
    for name, (secs, distinct) in out.items():
        print(f"  {name:<10} {secs * 1e3:7.2f} ms, {distinct} distinct digests")
    # both are collision-free on this universe
    for name, (_s, distinct) in out.items():
        assert distinct == 500
