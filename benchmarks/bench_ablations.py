"""E14 — ablations of PIM-trie's design choices (DESIGN.md §3).

Switches off, one at a time, the optimizations §4 motivates and
measures what each buys:

* pivot/two-layer HashMatching (§4.4.2) vs the naive per-bit probe of
  Algorithm 3 — PIM *work* drops by ~w/log w with pivots;
* Push-Pull (§3.3) vs always-push — the IO-time straggler bound
  degrades without pulls under skew;
* block size K_B — smaller blocks mean more hash-manager traffic,
  larger blocks mean coarser balance.
"""

from __future__ import annotations

import pytest

from conftest import measure
from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.workloads import shared_prefix_flood, uniform_keys

P = 16
N_KEYS = 512
N_QUERIES = 512
LEN = 128


def run_cfg(**cfg_kwargs):
    keys = uniform_keys(N_KEYS, LEN, seed=600)
    queries = keys[: N_QUERIES // 2] + shared_prefix_flood(
        N_QUERIES // 2, 64, LEN - 64, seed=601
    )
    system = PIMSystem(P, seed=1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P, **cfg_kwargs), keys=keys
    )
    res, m = measure(system, trie.lcp_batch, queries)
    return res, m


def test_pivot_hashmatching_ablation(benchmark):
    """§4.4.2: pivots cut hash-probing work by ~w/log w."""

    def run():
        res_p, m_pivot = run_cfg(use_pivots=True)
        res_n, m_naive = run_cfg(use_pivots=False)
        assert res_p == res_n  # identical answers
        return m_pivot, m_naive

    m_pivot, m_naive = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E14] HashMatching ablation (PIM work = hash probes):")
    print(f"  pivots ON : pim_work={m_pivot.pim_work:>9}  rounds={m_pivot.io_rounds}")
    print(f"  pivots OFF: pim_work={m_naive.pim_work:>9}  rounds={m_naive.io_rounds}")
    # naive probing touches every bit position: far more PIM work
    assert m_naive.pim_work > 2 * m_pivot.pim_work


def test_push_pull_ablation(benchmark):
    """§3.3: without pulls, a hot meta-block/block eats the whole batch."""

    def run():
        res_a, m_pp = run_cfg(use_push_pull=True)
        res_b, m_push = run_cfg(use_push_pull=False)
        assert res_a == res_b
        return m_pp, m_push

    m_pp, m_push = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E14] Push-Pull ablation under a 50% shared-prefix flood:")
    print(
        f"  push-pull: io_time={m_pp.io_time:>7}  "
        f"imbalance={m_pp.traffic_imbalance():5.2f}"
    )
    print(
        f"  push-only: io_time={m_push.io_time:>7}  "
        f"imbalance={m_push.traffic_imbalance():5.2f}"
    )
    # all-push concentrates the flood's fragments on the hot modules
    assert m_push.work_imbalance() >= m_pp.work_imbalance() * 0.9


@pytest.mark.parametrize("block_bound", [8, 16, 64, 256])
def test_block_size_sweep(benchmark, block_bound):
    """K_B trade-off: block count, HVM size, and matching cost."""

    def run():
        keys = uniform_keys(N_KEYS, LEN, seed=610)
        queries = uniform_keys(256, LEN, seed=611)
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(
            system,
            PIMTrieConfig(num_modules=P, block_bound=block_bound),
            keys=keys,
        )
        _, m = measure(system, trie.lcp_batch, queries)
        return trie.num_blocks(), m

    blocks, m = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E14] K_B={block_bound:>4}: blocks={blocks:>5}  "
        f"rounds={m.io_rounds:>3}  words/op="
        f"{m.total_communication / 256:7.1f}  "
        f"imbalance={m.traffic_imbalance():5.2f}"
    )
    assert blocks >= 1
