"""E12 — Theorem 4.3: O(Q_Q / P) IO time (PIM-balance, Definition 1).

For a fixed batch, the IO time (the max per-module word traffic summed
over rounds — the straggler bound) should shrink ~1/P as modules are
added, i.e. IO_time * P / total_communication stays roughly flat.
"""

from __future__ import annotations

import pytest

from conftest import build_pimtrie, measure
from repro.workloads import single_range_flood, uniform_keys

N_KEYS = 1024
N_QUERIES = 1024
LEN = 64


@pytest.mark.parametrize("skew", ["uniform", "flood"])
def test_io_time_scales_down_with_P(benchmark, skew):
    Ps = [4, 8, 16, 32]

    def run():
        out = []
        keys = uniform_keys(N_KEYS, LEN, seed=400)
        if skew == "uniform":
            queries = uniform_keys(N_QUERIES, LEN, seed=401)
        else:
            queries = single_range_flood(N_QUERIES, LEN, seed=402)
        for P in Ps:
            system, trie = build_pimtrie(P, keys)
            _, m = measure(system, trie.lcp_batch, queries)
            out.append((P, m.io_time, m.total_communication))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E12] {skew}: io_time vs P (fixed batch)")
    norm = []
    for P, io_time, words in out:
        k = io_time * P / max(1, words)
        norm.append(k)
        print(f"  P={P:>3}  io_time={io_time:>7}  words={words:>8}  "
              f"io_time*P/words={k:5.2f}")
    # normalized straggler cost stays within a small band: the work
    # really spreads across modules instead of pooling on one
    assert max(norm) / min(norm) < 4.0
    # and absolute io_time at P=32 is well below P=4's
    assert out[-1][1] < out[0][1]


def test_pim_time_balance(benchmark):
    """PIM time (max kernel work on any module) also spreads with P."""
    Ps = [4, 16]

    def run():
        out = []
        keys = uniform_keys(N_KEYS, LEN, seed=410)
        queries = uniform_keys(N_QUERIES, LEN, seed=411)
        for P in Ps:
            system, trie = build_pimtrie(P, keys)
            _, m = measure(system, trie.lcp_batch, queries)
            out.append((P, m.pim_time, m.pim_work))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E12] PIM time vs P:")
    for P, t, w in out:
        print(f"  P={P:>3}  pim_time={t:>8}  total_pim_work={w:>8}  "
              f"balance={w / max(1, t * P):4.2f}")
    # the max-loaded module holds a shrinking share as P grows
    assert out[1][1] < out[0][1]
