"""E4 — Table 1, Space column.

Measured per-module memory (in words) of the three structures.
Expected shapes:

* PIM-trie and distributed radix tree: O(L_D/w + n_D) — linear in keys,
  sub-linear in bit-length thanks to word packing / span chunking;
* Distributed x-fast trie: Θ(l) words per key (a hash entry per level).
"""

from __future__ import annotations

import pytest

from conftest import build_pimtrie, build_radix, build_xfast
from repro.workloads import uniform_keys


@pytest.mark.parametrize("n", [128, 512, 2048])
def test_space_vs_n(benchmark, n):
    """Space scales linearly in the number of keys for all structures."""
    P = 16
    length = 64

    def run():
        keys = uniform_keys(n, length, seed=70)
        out = {}
        _, trie = build_pimtrie(P, keys)
        out["pim_trie"] = trie.space_words()
        _, radix = build_radix(P, keys, span=4)
        out["dist_radix"] = radix.space_words()
        _, xfast = build_xfast(P, keys, width=length)
        out["dist_xfast"] = xfast.space_words()
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E4] space (words), n={n}, l=64:")
    for name, words in out.items():
        print(f"  {name:<28} {words:>9} words  ({words / n:6.1f} words/key)")
    assert out["pim_trie"] < out["dist_xfast"]


def test_space_vs_key_length(benchmark):
    """x-fast grows Θ(l)/key; PIM-trie grows only ~l/w per key."""
    P = 16
    n = 256

    def run():
        out = []
        for length in (32, 64, 128):
            keys = uniform_keys(n, length, seed=71)
            _, trie = build_pimtrie(P, keys)
            _, xfast = build_xfast(P, keys, width=length)
            out.append((length, trie.space_words(), xfast.space_words()))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E4] space vs key length (words/key):")
    for length, pt, xf in out:
        print(f"  l={length:>4}: pim_trie={pt / n:7.1f}  dist_xfast={xf / n:7.1f}")
    # quadrupling l quadruples x-fast space but far less for PIM-trie
    (l0, pt0, xf0), (_, _, _), (l2, pt2, xf2) = out
    assert xf2 / xf0 > 2.0
    assert pt2 / pt0 < xf2 / xf0


def test_space_linear_bound(benchmark):
    """Lemma 4.2 / 4.7: total space O(L_D/w + n_D), including the HVM's
    O(log P)-replicated hash values."""
    P = 16
    n = 1024
    length = 64

    def run():
        keys = uniform_keys(n, length, seed=72)
        _, trie = build_pimtrie(P, keys)
        return trie.space_words()

    words = benchmark.pedantic(run, iterations=1, rounds=1)
    q_d = n * (length // 64 + 2)  # L_D/w + n_D (within constants)
    print(f"\n[E4] PIM-trie total space {words} words vs Q_D~{q_d} "
          f"(ratio {words / q_d:.1f})")
    assert words < 60 * q_d  # constant-factor linear bound
