"""E11 — Theorems 4.3 / 5.1: O(log P) IO rounds per batch.

Sweeps the number of PIM modules P and fits the per-batch round count
for trie matching (LCP) and Insert.  Doubling P should add at most a
constant number of rounds — the signature of the meta-block-tree
descent being the only P-dependent stage.
"""

from __future__ import annotations

import math

import pytest

from conftest import build_pimtrie, measure
from repro.workloads import uniform_keys

N_KEYS = 1024
N_OPS = 512
LEN = 64


def rounds_for(P: int, op: str) -> int:
    keys = uniform_keys(N_KEYS, LEN, seed=300)
    system, trie = build_pimtrie(P, keys)
    if op == "lcp":
        batch = keys[: N_OPS // 2] + uniform_keys(N_OPS // 2, LEN, seed=301)
        _, m = measure(system, trie.lcp_batch, batch)
    elif op == "insert":
        batch = uniform_keys(N_OPS, LEN, seed=302)
        _, m = measure(system, trie.insert_batch, batch)
    elif op == "subtree":
        batch = [k.prefix(6) for k in keys[:8]]
        _, m = measure(system, trie.subtree_batch, batch)
    else:
        raise ValueError(op)
    return m.io_rounds


@pytest.mark.parametrize("op", ["lcp", "insert", "subtree"])
def test_rounds_grow_logarithmically(benchmark, op):
    Ps = [4, 8, 16, 32, 64]

    def run():
        return [rounds_for(P, op) for P in Ps]

    rounds = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E11] {op}: rounds per batch vs P")
    for P, r in zip(Ps, rounds):
        print(f"  P={P:>3}  rounds={r}")
    # doubling P adds O(1) rounds
    deltas = [b - a for a, b in zip(rounds, rounds[1:])]
    print(f"  deltas per doubling: {deltas}")
    assert max(deltas) <= 12
    # and the absolute count stays within c*log2(P) + c'
    for P, r in zip(Ps, rounds):
        assert r <= 12 * (math.log2(P) + 2), f"P={P}: {r} rounds"


def test_rounds_flat_in_batch_size(benchmark):
    """For fixed P, growing the batch must NOT grow the round count —
    batches are processed whole, not per operation."""
    P = 16

    def run():
        out = []
        keys = uniform_keys(N_KEYS, LEN, seed=310)
        for n in (64, 256, 1024):
            system, trie = build_pimtrie(P, keys)
            batch = uniform_keys(n, LEN, seed=311)
            _, m = measure(system, trie.lcp_batch, batch)
            out.append((n, m.io_rounds))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E11] rounds vs batch size (P=16):")
    for n, r in out:
        print(f"  batch={n:>5}  rounds={r}")
    rs = [r for _, r in out]
    assert max(rs) - min(rs) <= 4
