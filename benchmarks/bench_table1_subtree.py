"""E3 — Table 1, Subtree column.

SubtreeQuery cost for the three structures.  Expected shapes:

* Distributed radix tree: up to O(n_S) IO rounds (frontier expansion
  one level per round) and O(l/s + L_S/w + n_S) words;
* Distributed x-fast trie: O(n_D) rounds worst case, O(L_S) words (it
  expands one trie level per round and stores every level);
* PIM-trie: O(log P) rounds and O((l + L_S)/w + n_S) words — the
  result-size term is unavoidable, the round count is the win.
"""

from __future__ import annotations

import math

import pytest

from conftest import build_pimtrie, build_radix, build_xfast, fmt_row, measure
from repro import BitString
from repro.workloads import uniform_keys


def keyset(n: int, length: int, prefix_bits: int, seed: int) -> list[BitString]:
    """Half the keys live under one fixed prefix (the query target)."""
    base = uniform_keys(n, length, seed=seed)
    prefix = BitString.from_str("10" * (prefix_bits // 2))
    dense = [
        prefix + k.suffix_from(prefix_bits) for k in base[: n // 2]
    ]
    return dense + base[n // 2 :]


@pytest.mark.parametrize("result_frac", [0.1, 0.5])
def test_subtree_cost(benchmark, result_frac):
    P = 16
    length = 64
    n = 256
    prefix_bits = 8

    def run():
        keys = keyset(n, length, prefix_bits, seed=50)
        target = keys[0].prefix(prefix_bits)
        # shrink/grow the result set by narrowing the prefix
        extra = int(math.log2(max(2, 1 / result_frac)))
        query = keys[0].prefix(prefix_bits + extra)
        rows = {}
        sizes = {}

        system, trie = build_pimtrie(P, keys)
        (res,), m = measure(system, trie.subtree_batch, [query])
        rows["pim_trie"] = m
        sizes["pim_trie"] = len(res)

        system, radix = build_radix(P, keys, span=4)
        aligned = query.prefix((len(query) // 4) * 4)
        (res_r,), m = measure(system, radix.subtree_batch, [aligned])
        rows["dist_radix"] = m
        sizes["dist_radix"] = len(res_r)

        system, xfast = build_xfast(P, keys, width=length)
        (res_x,), m = measure(system, xfast.subtree_batch, [query])
        rows["dist_xfast"] = m
        sizes["dist_xfast"] = len(res_x)
        return rows, sizes

    rows, sizes = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E3] Subtree, P={P}, result sizes: {sizes}")
    for name, m in rows.items():
        print("  " + fmt_row(name, m, max(1, sizes[name])))
    # PIM-trie answers in far fewer rounds than the frontier expanders
    assert rows["pim_trie"].io_rounds < rows["dist_xfast"].io_rounds
    assert sizes["pim_trie"] > 0


def test_subtree_rounds_flat_in_result_size(benchmark):
    """PIM-trie subtree rounds should not grow with |result| (only the
    words moved should)."""
    P = 16

    def run():
        out = []
        for frac_bits in (6, 3, 0):  # result ~ n/2^frac_bits
            keys = keyset(512, 64, 8, seed=60)
            query = keys[0].prefix(8 + frac_bits)
            system, trie = build_pimtrie(P, keys)
            (res,), m = measure(system, trie.subtree_batch, [query])
            out.append((len(res), m.io_rounds, m.total_communication))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E3] PIM-trie subtree: (result size, rounds, words)")
    for size, rounds, words in out:
        print(f"  |S|={size:>4}  rounds={rounds:>3}  words={words}")
    sizes = [s for s, _, _ in out]
    rounds = [r for _, r, _ in out]
    words = [w for _, _, w in out]
    assert sizes[-1] > 4 * sizes[0] > 0
    # rounds grow at most mildly while the result grows by >4x
    assert rounds[-1] <= rounds[0] + 2 * math.log2(P)
    # communication does scale with the result
    assert words[-1] > words[0]
