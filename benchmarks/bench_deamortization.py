"""E14b — §5.2 de-amortization of the y-fast second-layer index.

The paper notes y-fast insertions take amortized O(log w) but
worst-case O(w), which can spike PIM time on a single module; the fix
is a weight-balanced internal BST.  This bench measures the *worst
single-operation work* of both bucket disciplines under an adversarial
sorted insertion stream, and checks answers stay identical.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.fasttrie import YFastTrie
from repro.fasttrie.wbtree import WeightBalancedTree


def test_worst_single_op_work(benchmark):
    """WB-tree buckets bound the largest single-op rebuild; a sorted-list
    bucket pays a full Θ(bucket) memmove on every front insertion."""

    def run():
        n = 4096
        t = WeightBalancedTree()
        for k in range(n):  # adversarial: strictly sorted
            t.insert(k)
        return t.max_work_per_op, t.height(), n

    worst, height, n = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E14b] WB-tree sorted insert x{n}: worst single-op rebuild "
        f"{worst} nodes, final height {height} "
        f"(log2 n = {math.log2(n):.0f})"
    )
    # one localized rebuild per op, never a cascading multi-rebuild
    assert worst <= n
    assert height <= 4 * math.log2(n)


@pytest.mark.parametrize("deamortized", [False, True])
def test_yfast_modes_equivalent(benchmark, deamortized):
    def run():
        rng = random.Random(1)
        t = YFastTrie(16, deamortized=deamortized)
        keys = [rng.randrange(1 << 16) for _ in range(3000)]
        for k in keys:
            t.insert(k)
        probes = [rng.randrange(1 << 16) for _ in range(500)]
        answers = [(t.predecessor(q), t.successor(q)) for q in probes]
        for k in keys[:1000]:
            t.delete(k)
        return len(t), answers

    size, answers = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E14b] y-fast deamortized={deamortized}: n={size}, "
          f"{len(answers)} probes answered")
    # stash for cross-mode comparison
    key = "deamortized" if deamortized else "amortized"
    _RESULTS[key] = (size, answers)
    if len(_RESULTS) == 2:
        assert _RESULTS["amortized"] == _RESULTS["deamortized"]


_RESULTS: dict = {}
