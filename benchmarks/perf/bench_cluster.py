"""Cluster benchmark entry point (CI can run this with ``--smoke``).

Sweeps sharding policy × shard count × replication × skew × rack-loss
scenario through the multi-rack cluster (`repro.cluster`) and writes
``BENCH_cluster.json``: hash-vs-range skew imbalance, answer-digest
parity across shard counts, and availability under whole-rack loss
with K-way replication.  All logic lives in
:mod:`repro.cluster.bench`:

    PYTHONPATH=src python benchmarks/perf/bench_cluster.py [--smoke]

Not a pytest module: it defines no test functions and only runs under
``__main__``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.cluster.bench import run_bench_cluster

    parser = argparse.ArgumentParser(
        prog="bench_cluster",
        description="Multi-rack cluster sweep (sharding x shards x "
        "replication x skew x rack loss, writes BENCH_cluster.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (~seconds)")
    parser.add_argument("--out", default="BENCH_cluster.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_bench_cluster(out=args.out, smoke=args.smoke)
    h = report["headline"]
    ok = (
        h["all_correct"]
        and h["digest_consistent"]
        and h["availability_k2"] == 1.0
        and h["skew_resistant"]
    )
    print(
        f"correct={h['all_correct']} digest_consistent="
        f"{h['digest_consistent']} availability(K>=2)="
        f"{h['availability_k2']:.3f} skew_resistant={h['skew_resistant']}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
