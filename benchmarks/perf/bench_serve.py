"""Serve-layer benchmark entry point (CI can run this with ``--smoke``).

Sweeps arrival rate × batching policy × key skew through the
continuous-batching service layer (`repro.serve`) and writes
``BENCH_serve.json``: latency percentiles (simulated units and IO
rounds), throughput, IO rounds per op, batch occupancy, queue depth,
and the PIM Model metrics with per-module balance arrays — plus the
measured batching trade-off (a larger max-wait deadline buys IO-round
amortization at the cost of tail latency).  All logic lives in
:mod:`repro.serve.bench`:

    PYTHONPATH=src python benchmarks/perf/bench_serve.py [--smoke]

Not a pytest module: it defines no test functions and only runs under
``__main__``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.serve.bench import run_bench_serve

    parser = argparse.ArgumentParser(
        prog="bench_serve",
        description="Continuous-batching service sweep "
        "(rate x policy x skew, writes BENCH_serve.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (~seconds)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_bench_serve(out=args.out, smoke=args.smoke)
    ok = report["tradeoff_shown_everywhere"]
    print(f"batching trade-off shown on every (rate, skew): {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
