"""Serve-layer benchmark entry point (CI can run this with ``--smoke``).

Sweeps arrival rate × batching policy × key skew through the
continuous-batching service layer (`repro.serve`) and writes
``BENCH_serve.json``: latency percentiles (simulated units and IO
rounds), throughput, IO rounds per op, batch occupancy, queue depth,
and the PIM Model metrics with per-module balance arrays — plus the
measured batching trade-off (a larger max-wait deadline buys IO-round
amortization at the cost of tail latency), the pipelined-vs-sequential
comparison (digest-identical answers, makespan/p99 gains), and the
adaptive-vs-fixed Pareto cells.  All logic lives in
:mod:`repro.serve.bench`:

    PYTHONPATH=src python benchmarks/perf/bench_serve.py [--smoke] [--check-floor]

Not a pytest module: it defines no test functions and only runs under
``__main__``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.serve.bench import check_floor_serve, run_bench_serve

    parser = argparse.ArgumentParser(
        prog="bench_serve",
        description="Continuous-batching service sweep "
        "(rate x policy x skew, writes BENCH_serve.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (~seconds)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail unless the batching trade-off, the "
                        "pipelined digest parity, and the adaptive "
                        "Pareto-frontier floors all hold")
    args = parser.parse_args(argv)
    report = run_bench_serve(out=args.out, smoke=args.smoke)
    ok = report["tradeoff_shown_everywhere"]
    print(f"batching trade-off shown on every (rate, skew): {ok}")
    print(
        "pipelined answers match sequential everywhere: "
        f"{report['pipeline_answers_match_everywhere']}"
    )
    print(
        "adaptive on the Pareto frontier everywhere: "
        f"{report['adaptive_on_frontier_everywhere']}"
    )
    if args.check_floor:
        return check_floor_serve(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
