"""Wall-clock perf harness entry point (CI runs this with ``--smoke``).

Times the simulator itself — batched LCP / Insert / Delete / Subtree
and the E10 skew flood — with the fast path on vs off, writes
``BENCH_wallclock.json`` (ops/sec, per-phase breakdown, P/n/l sweep),
and asserts metric parity between the two modes.  All logic lives in
:mod:`repro.perf`; this file exists so the harness sits alongside the
other benchmarks and can be invoked without installing the package
CLI:

    PYTHONPATH=src python benchmarks/perf/bench_wallclock.py [--smoke]

Not a pytest module: it defines no test functions and only runs under
``__main__``.
"""

from __future__ import annotations

import sys

from repro.perf import main

if __name__ == "__main__":
    sys.exit(main())
