"""Adaptive-skew benchmark entry point (CI can run this with ``--smoke``).

Runs each time-varying skew pattern (drifting Zipf, moving flash
crowd, diurnal mix) through the serve layer twice — adaptive
controller on vs static layout — and writes ``BENCH_adapt.json``:
rounds/op and simulated latency percentiles per side, answer-digest
parity between the runs, and a dict-oracle check on every reply.  All
logic lives in :mod:`repro.adapt.bench`:

    PYTHONPATH=src python benchmarks/perf/bench_adapt.py [--smoke]

The exit code enforces the correctness gates always (digest parity +
oracle match) and the performance headline (adaptive beats static on
p99 or rounds/op under >= 2 patterns) on the full profile; the smoke
profile is too small to amortize maintenance, so CI checks only
correctness there.

Not a pytest module: it defines no test functions and only runs under
``__main__``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.adapt.bench import run_bench_adapt

    parser = argparse.ArgumentParser(
        prog="bench_adapt",
        description="Adaptive vs static layout under time-varying skew "
        "(writes BENCH_adapt.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (~seconds, correctness only)")
    parser.add_argument("--out", default="BENCH_adapt.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    report = run_bench_adapt(out=args.out, smoke=args.smoke, seed=args.seed)
    h = report["headline"]
    ok = h["all_digests_match"] and h["all_oracle_match"]
    if not args.smoke:
        ok = ok and h["adaptive_beats_static"]
    print(
        f"digests_match={h['all_digests_match']} "
        f"oracle_match={h['all_oracle_match']} "
        f"patterns_won={h['patterns_won']}/3 "
        f"p99_speedups={h['p99_speedups']}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
