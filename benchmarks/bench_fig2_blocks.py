"""E6 — Figure 2: block decomposition and query-trie splitting.

Figure 2 shows the data trie of Figure 1 decomposed into blocks
distributed across modules (with mirror nodes) and the query trie split
by data block-root hashes into blocks tagged with their matching data
block.  This bench reconstructs that decomposition and then measures
block statistics at scale: block count, weight distribution against the
K_B bound, and mirror-node counts.
"""

from __future__ import annotations

import pytest

from conftest import build_pimtrie
from repro import BitString, IncrementalHasher
from repro.core import extract_blocks
from repro.trie import build_query_trie, node_weight_words
from repro.workloads import shared_prefix_flood, uniform_keys

bs = BitString.from_str

FIG1_DATA = ["000010", "00001101", "1010000", "1010111", "101011"]


def test_figure2_decomposition(benchmark):
    """Decompose the Figure-1 data trie; every mirror node must refer to
    a real child block and every block root must be a compressed node."""

    def run():
        hasher = IncrementalHasher(seed=1)
        data = build_query_trie([bs(k) for k in FIG1_DATA])
        blocks, root_strings = extract_blocks(data, block_bound=8, hasher=hasher)
        return blocks, root_strings

    blocks, root_strings = benchmark.pedantic(run, iterations=1, rounds=1)
    ids = {b.block_id for b in blocks}
    print(f"\n[E6] Figure 2: {len(blocks)} blocks")
    for b in sorted(blocks, key=lambda x: x.root_depth):
        print(
            f"  block root='{root_strings[b.block_id].to_str()}'"
            f" keys={b.trie.num_keys} children={b.child_ids()}"
        )
    for b in blocks:
        for cid in b.child_ids():
            assert cid in ids
        b.check(IncrementalHasher(seed=1), root_strings[b.block_id])
    # exactly one root block (the empty prefix)
    assert sum(1 for b in blocks if b.parent_id is None) == 1


@pytest.mark.parametrize("workload", ["uniform", "adversarial"])
def test_block_statistics(benchmark, workload):
    """Blocks stay within O(K_B) weight and O(Q_D/K_B) count even under
    worst-case key skew (all keys sharing a long prefix)."""
    bound = 32

    def run():
        hasher = IncrementalHasher(seed=2)
        if workload == "uniform":
            keys = uniform_keys(1024, 64, seed=90)
        else:
            keys = shared_prefix_flood(1024, 512, 32, seed=90)
        data = build_query_trie(keys)
        total_weight = sum(
            node_weight_words(n) for n in data.iter_nodes()
        )
        blocks, _ = extract_blocks(data, block_bound=bound, hasher=hasher)
        weights = [
            sum(node_weight_words(n) for n in b.trie.iter_nodes())
            for b in blocks
        ]
        return total_weight, weights

    total_weight, weights = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E6] {workload}: {len(weights)} blocks, "
        f"max weight {max(weights)} (bound {bound}), "
        f"total {total_weight}"
    )
    assert max(weights) <= 3 * bound
    assert len(weights) <= 2 * total_weight / bound + 2


def test_mirrors_match_children(benchmark):
    """Every parent block holds exactly one mirror per child block."""
    P = 8

    def run():
        system, trie = build_pimtrie(P, uniform_keys(512, 64, seed=91))
        mirrors = {}
        for m in range(P):
            for bid, blk in (
                system.modules[m].context.scratch.get("blocks", {}).items()
            ):
                mirrors[bid] = sorted(blk.child_ids())
        return trie, mirrors

    trie, mirrors = benchmark.pedantic(run, iterations=1, rounds=1)
    n_mirrors = sum(len(v) for v in mirrors.values())
    print(f"\n[E6] {len(mirrors)} blocks, {n_mirrors} mirror nodes")
    for bid, kids in mirrors.items():
        assert kids == sorted(trie.block_children.get(bid, set()))
