"""Shared fixtures/helpers for the benchmark harness.

Each ``bench_*.py`` reproduces one table or figure of the paper (see
DESIGN.md §3 for the experiment index).  Benchmarks print the measured
rows — IO rounds, per-op words, load-balance ratios — so running

    pytest benchmarks/ --benchmark-only -s

regenerates the paper's comparisons on the simulated PIM Model.  The
``pytest-benchmark`` timing numbers measure simulator wall-clock and
are *not* paper quantities; the printed model metrics are.
"""

from __future__ import annotations

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.baselines import (
    DistributedRadixTree,
    DistributedXFastTrie,
    RangePartitionedIndex,
)


def measure(system: PIMSystem, fn, *args, **kwargs):
    """Run ``fn`` and return (result, MetricsSnapshot delta)."""
    before = system.snapshot()
    result = fn(*args, **kwargs)
    return result, system.snapshot().delta(before)


def build_pimtrie(P, keys, seed=1, **cfg):
    system = PIMSystem(P, seed=seed)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P, **cfg), keys=keys, values=None
    )
    return system, trie


def build_radix(P, keys, span=4, seed=1):
    system = PIMSystem(P, seed=seed)
    tree = DistributedRadixTree(system, span=span, keys=keys)
    return system, tree


def build_xfast(P, keys, width, seed=1):
    system = PIMSystem(P, seed=seed)
    trie = DistributedXFastTrie(system, width=width, keys=keys)
    return system, trie


def build_range(P, keys, seed=1):
    system = PIMSystem(P, seed=seed)
    idx = RangePartitionedIndex(system, keys=keys)
    return system, idx


def fmt_row(label: str, metrics, n_ops: int) -> str:
    return (
        f"{label:<28} rounds={metrics.io_rounds:>4}  "
        f"words/op={metrics.total_communication / max(1, n_ops):>9.2f}  "
        f"io_time={metrics.io_time:>7}  "
        f"imbalance={metrics.traffic_imbalance():>5.2f}"
    )
