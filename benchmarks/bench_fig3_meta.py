"""E7 — Figure 3: meta-tree, meta-blocks, master-tree replication.

Figure 3 shows the meta-tree over blocks decomposed into meta-blocks
with a replicated master-tree and per-meta-block hash tables.  This
bench checks the hash value manager's structural invariants at scale:

* the piece tables are subtree-complete (selective replication, §5.2);
* each block-root hash is replicated O(log P) times, so the whole HVM
  stays within Lemma 4.7's O(Q_D) space;
* the master-tree is replicated on all P modules.
"""

from __future__ import annotations

import math

import pytest

from conftest import build_pimtrie
from repro.workloads import uniform_keys


def gather_pieces(system):
    pieces = {}
    for m in range(system.num_modules):
        pieces.update(system.modules[m].context.scratch.get("pieces", {}))
    return pieces


@pytest.mark.parametrize("P", [8, 32])
def test_hvm_structure(benchmark, P):
    def run():
        system, trie = build_pimtrie(P, uniform_keys(1024, 64, seed=100))
        return system, trie

    system, trie = benchmark.pedantic(run, iterations=1, rounds=1)
    pieces = gather_pieces(system)
    n_blocks = trie.num_blocks()
    replicas = sum(len(p.table) for p in pieces.values())
    owned = sum(len(p.owned) for p in pieces.values())
    print(
        f"\n[E7] P={P}: blocks={n_blocks} pieces={len(pieces)} "
        f"owned={owned} replicated-entries={replicas} "
        f"(x{replicas / max(1, n_blocks):.1f} per block)"
    )
    # every block owned exactly once
    assert owned == n_blocks
    # subtree-completeness: a piece's table covers its descendants' owned
    for pid, piece in pieces.items():
        covered = set(piece.table)
        stack = list(trie.piece_children.get(pid, ()))
        while stack:
            c = stack.pop()
            assert trie.piece_owned[c] <= covered, (
                f"piece {pid} missing child {c}'s records"
            )
            stack.extend(trie.piece_children.get(c, ()))
    # replication factor O(log P) (Lemma 4.7)
    assert replicas <= n_blocks * 4 * (math.log2(P) + 2)


def test_master_replicated_everywhere(benchmark):
    P = 16

    def run():
        system, trie = build_pimtrie(P, uniform_keys(512, 64, seed=101))
        return system, trie

    system, trie = benchmark.pedantic(run, iterations=1, rounds=1)
    masters = [
        system.modules[m].context.scratch.get("master") for m in range(P)
    ]
    sizes = [len(t.by_id) if t is not None else 0 for t in masters]
    print(f"\n[E7] master table sizes per module: {sizes}")
    assert all(s == sizes[0] for s in sizes)
    assert sizes[0] == len(trie.master_pieces)


def test_meta_block_size_bounds(benchmark):
    """Pieces own at most K_SMB records; meta-block trees represent at
    most ~K_MB each (fresh after a bulk build)."""
    P = 32

    def run():
        system, trie = build_pimtrie(P, uniform_keys(2048, 64, seed=102))
        return system, trie

    system, trie = benchmark.pedantic(run, iterations=1, rounds=1)
    cfg = trie.config
    worst_owned = max(len(v) for v in trie.piece_owned.values())
    tree_sizes = [
        trie._subtree_owned_count(root) for root in trie.master_pieces
    ]
    print(
        f"\n[E7] K_SMB={cfg.small_meta_bound} worst piece={worst_owned}; "
        f"K_MB={cfg.meta_block_bound} tree sizes={sorted(tree_sizes)[-5:]}"
    )
    assert worst_owned <= cfg.small_meta_bound
    assert max(tree_sizes) <= cfg.meta_block_bound
