"""E1 — Table 1, LCP column.

Measures IO rounds per batch and communication per operation for the
three structures, sweeping the number of modules P and the key length
l.  Expected shapes (Table 1):

* Distributed radix tree: rounds ~ l/s, words/op ~ l/s;
* Distributed x-fast trie: rounds ~ log l (fixed-length keys only);
* PIM-trie: rounds ~ log P (flat in l), words/op ~ l/w + O(1).
"""

from __future__ import annotations

import math

import pytest

from conftest import build_pimtrie, build_radix, build_xfast, fmt_row, measure
from repro.workloads import uniform_keys

N_KEYS = 256
N_QUERIES = 256
SPAN = 4


def run_lcp_comparison(P: int, length: int) -> dict:
    keys = uniform_keys(N_KEYS, length, seed=10)
    # Half the queries are stored keys (LCP = l, forcing the full-depth
    # descent Table 1 charges for) and half are fresh uniform keys
    # (short matches).  Uniform-only queries diverge after ~log2(n) bits
    # and would let the radix baseline off its O(l/s) worst case.
    fresh = uniform_keys(N_QUERIES // 2, length, seed=20)
    queries = keys[: N_QUERIES - len(fresh)] + fresh
    rows = {}

    system, trie = build_pimtrie(P, keys)
    _, m = measure(system, trie.lcp_batch, queries)
    rows["pim_trie"] = m

    system, radix = build_radix(P, keys, span=SPAN)
    _, m = measure(system, radix.lcp_batch, queries)
    rows["dist_radix"] = m

    if length <= 128:  # x-fast is fixed-width; keep table sizes sane
        system, xfast = build_xfast(P, keys, width=length)
        _, m = measure(system, xfast.lcp_batch, queries)
        rows["dist_xfast"] = m
    return rows


@pytest.mark.parametrize("length", [32, 64, 128, 256])
def test_lcp_vs_key_length(benchmark, length):
    """Communication per op: PIM-trie ~ l/w, radix ~ l/s (s << w)."""
    P = 16
    rows = benchmark.pedantic(
        run_lcp_comparison, args=(P, length), iterations=1, rounds=1
    )
    print(f"\n[E1] LCP, P={P}, l={length} bits, batch={N_QUERIES}")
    for name, m in rows.items():
        print("  " + fmt_row(name, m, N_QUERIES))
    # shape checks (Table 1)
    radix_rounds = rows["dist_radix"].io_rounds
    pim_rounds = rows["pim_trie"].io_rounds
    assert radix_rounds >= length / SPAN  # O(l/s) pointer chasing
    assert pim_rounds <= 10 * (math.log2(P) + 1)  # O(log P), flat in l


@pytest.mark.parametrize("P", [4, 16, 64])
def test_lcp_vs_modules(benchmark, P):
    """IO rounds: PIM-trie grows ~log P; radix is independent of P."""
    length = 64
    rows = benchmark.pedantic(
        run_lcp_comparison, args=(P, length), iterations=1, rounds=1
    )
    print(f"\n[E1] LCP, P={P}, l={length} bits, batch={N_QUERIES}")
    for name, m in rows.items():
        print("  " + fmt_row(name, m, N_QUERIES))
    assert rows["pim_trie"].io_rounds <= 10 * (math.log2(P) + 1)
    # PIM-trie words/op stays within a small multiple of l/w + O(1)
    per_op = rows["pim_trie"].total_communication / N_QUERIES
    assert per_op < 40 * (length / 64 + 1)
