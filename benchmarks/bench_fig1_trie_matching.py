"""E5 — Figure 1: query-trie construction and trie matching.

Reconstructs the paper's worked example (the data trie with keys drawn
in Figure 1, the query trie built from the two query strings, and the
matched trie marked in red, whose deepest match ends on hidden nodes
for the common prefix "10100"), then scales the same pipeline up and
measures query-trie construction plus matching cost.
"""

from __future__ import annotations

import pytest

from conftest import build_pimtrie, fmt_row, measure
from repro import BitString
from repro.trie import build_query_trie
from repro.workloads import uniform_variable_keys

bs = BitString.from_str

#: the data trie of Figure 1 (edge labels 00001·101 / 0·11 / 0000·111)
FIG1_DATA = ["000010", "00001101", "1010000", "1010111", "101011"]
#: the query strings of Figure 1
FIG1_QUERIES = ["00001001", "101001", "101011"]


def test_figure1_example(benchmark):
    """The literal Figure-1 example: matched-trie depths per query."""
    P = 4

    def run():
        system, trie = build_pimtrie(P, [bs(k) for k in FIG1_DATA])
        res, m = measure(
            system, trie.lcp_batch, [bs(q) for q in FIG1_QUERIES]
        )
        return res, m

    res, m = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E5] Figure 1 example — LCP of each query string:")
    for q, lcp in zip(FIG1_QUERIES, res):
        print(f"  {q:<10} -> {lcp}")
    print("  " + fmt_row("pim_trie", m, len(FIG1_QUERIES)))
    # the paper's example: "101001" matches "10100" via hidden nodes (5)
    assert res == [6, 5, 6]


def test_query_trie_construction_cost(benchmark):
    """Lemma 4.1: construction near-linear in batch size."""

    def run():
        out = []
        for n in (128, 512, 2048):
            batch = uniform_variable_keys(n, 8, 96, seed=80)
            qt = build_query_trie(batch)
            out.append((n, qt.num_nodes(), qt.L))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E5] query trie construction: (batch, nodes, edge bits)")
    for n, nodes, bits in out:
        print(f"  n={n:>5}  nodes={nodes:>5}  L={bits}")
    # nodes O(n): compressed trie node count stays within 2n
    for n, nodes, _ in out:
        assert nodes <= 2 * n + 1


def test_matching_scales_with_batch(benchmark):
    """Matching cost per op stays flat as the batch grows (batch
    parallelism amortizes the shared prefixes)."""
    P = 16

    def run():
        keys = uniform_variable_keys(512, 16, 96, seed=81)
        out = []
        for n in (64, 256, 1024):
            queries = uniform_variable_keys(n, 16, 96, seed=82)
            system, trie = build_pimtrie(P, keys)
            _, m = measure(system, trie.lcp_batch, queries)
            out.append((n, m))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E5] matching vs batch size:")
    for n, m in out:
        print("  " + fmt_row(f"batch={n}", m, n))
    small = out[0][1].total_communication / out[0][0]
    large = out[-1][1].total_communication / out[-1][0]
    assert large < 3 * small  # per-op words roughly flat
