"""E13 — §4.4.3 verification under injected hash collisions.

The paper keeps hash collisions at bay with Θ(log N)-bit hashes plus an
S_last verification step and re-hash on detected collisions.  Here we
narrow the fingerprint width to force collisions and measure:

* how many candidate matches the S_last check rejects (detected
  collisions) as a function of width;
* that the final LCP answers remain correct despite collisions (the
  inline redo walks to the next-shallower candidate);
* that the wide default width observes zero collisions.
"""

from __future__ import annotations

import pytest

from conftest import measure
from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.trie import PatriciaTrie
from repro.workloads import uniform_keys

P = 8
N_KEYS = 512
N_QUERIES = 256
LEN = 64


def run_with_width(width: int):
    keys = uniform_keys(N_KEYS, LEN, seed=500)
    queries = keys[: N_QUERIES // 2] + uniform_keys(
        N_QUERIES // 2, LEN, seed=501
    )
    system = PIMSystem(P, seed=1)
    cfg = PIMTrieConfig(num_modules=P, hash_width=width, verify=True)
    trie = PIMTrie(system, cfg, keys=keys)
    from repro.trie import build_query_trie

    qt = build_query_trie(queries)
    trie._prepare_query(qt)
    outcome = trie.match_batch(qt)
    folded = trie._fold_keys(qt, outcome)
    got = [folded[q][0] for q in queries]
    ref = PatriciaTrie()
    for k in keys:
        ref.insert(k)
    want = [ref.lcp(q) for q in queries]
    correct = sum(g == w for g, w in zip(got, want))
    return outcome.collisions, correct, len(queries)


@pytest.mark.parametrize("width", [10, 14, 20, 61])
def test_collisions_vs_width(benchmark, width):
    collisions, correct, total = benchmark.pedantic(
        run_with_width, args=(width,), iterations=1, rounds=1
    )
    print(
        f"\n[E13] width={width:>2} bits: detected collisions={collisions:>4}  "
        f"correct LCPs={correct}/{total}"
    )
    if width >= 61:
        assert collisions == 0
        assert correct == total
    if width <= 12:
        # narrow fingerprints must actually collide, or the experiment
        # isn't exercising the verification path
        assert collisions > 0
    # S_last verification keeps answers correct despite collisions
    assert correct == total


def test_rehash_changes_fingerprints(benchmark):
    """A global re-hash (new seed) redraws all comparisons: with a
    narrow width, the *set of colliding pairs* changes across seeds."""

    def run():
        from repro.bits import IncrementalHasher
        from repro.workloads import uniform_keys as uk

        keys = uk(400, 48, seed=510)
        out = []
        for seed in (1, 2):
            h = IncrementalHasher(seed=seed, width=12)
            fps = {}
            pairs = set()
            for k in keys:
                fp = h.fingerprint_of(k)
                if fp in fps:
                    pairs.add((min(fps[fp], k), max(fps[fp], k)))
                else:
                    fps[fp] = k
            out.append(pairs)
        return out

    pairs_a, pairs_b = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E13] 12-bit collision pairs: seed1={len(pairs_a)} "
        f"seed2={len(pairs_b)} shared={len(pairs_a & pairs_b)}"
    )
    assert pairs_a and pairs_b
    assert pairs_a != pairs_b  # re-hash actually resolves collisions
