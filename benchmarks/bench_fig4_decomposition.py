"""E8 — Figure 4: recursive meta-block decomposition.

Figure 4 shows meta-block trees produced by cutting at the Lemma-4.5
node.  This bench validates the two lemmas quantitatively:

* Lemma 4.5 — the chosen cut node leaves a maximum remaining piece of
  at most (n+1)/2 nodes, on random trees, paths, stars, and caterpillars;
* Lemma 4.6 — the piece-tree height stays O(log n) even for the
  path-shaped meta-trees an adversary can produce (the flat-list
  degeneration §5.2 warns about).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import cut_node, decompose_component


def make_tree(shape: str, n: int, seed: int = 0):
    rng = random.Random(seed)
    kids: dict[int, list[int]] = {i: [] for i in range(n)}
    if shape == "path":
        for i in range(1, n):
            kids[i - 1].append(i)
    elif shape == "star":
        for i in range(1, n):
            kids[0].append(i)
    elif shape == "caterpillar":
        for i in range(1, n // 2):
            kids[i - 1].append(i)
        for i in range(n // 2, n):
            kids[rng.randrange(n // 2)].append(i)
    elif shape == "random":
        for i in range(1, n):
            kids[rng.randrange(i)].append(i)
    else:
        raise ValueError(shape)
    return kids


def piece_tree_height(pc: dict[int, list[int]], root) -> int:
    def h(k):
        return 1 + max((h(c) for c in pc[k]), default=0)

    return h(root)


@pytest.mark.parametrize("shape", ["path", "star", "caterpillar", "random"])
def test_lemma45_cut_quality(benchmark, shape):
    """max remaining piece after cutting the chosen node <= (n+1)/2."""

    def run():
        out = []
        for n in (31, 128, 513):
            kids = make_tree(shape, n, seed=n)
            nodes = list(range(n))
            v = cut_node(nodes, kids, 0)
            # evaluate the split this node produces
            size = {}
            order = []
            stack = [0]
            while stack:
                u = stack.pop()
                order.append(u)
                stack.extend(kids[u])
            for u in reversed(order):
                size[u] = 1 + sum(size[c] for c in kids[u])
            upper = n - (size[v] - 1)
            worst = max([upper] + [size[c] for c in kids[v]])
            out.append((n, worst))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E8] Lemma 4.5 on {shape} trees: (n, max piece)")
    for n, worst in out:
        print(f"  n={n:>4}  max piece={worst:>4}  bound={(n + 1) // 2 + 1}")
        assert worst <= (n + 1) // 2 + 1


@pytest.mark.parametrize("shape", ["path", "star", "caterpillar", "random"])
def test_lemma46_height(benchmark, shape):
    """Piece-tree height O(log n) for every adversarial shape."""
    bound = 8

    def run():
        out = []
        for n in (64, 256, 1024):
            kids = make_tree(shape, n, seed=n + 1)
            pm, pc, root = decompose_component(0, kids, bound)
            # structural checks: pieces partition the nodes
            seen = [u for members in pm.values() for u in members]
            assert sorted(seen) == list(range(n))
            assert all(len(m) <= max(bound, 2) for m in pm.values())
            out.append((n, piece_tree_height(pc, root), len(pm)))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E8] Lemma 4.6 on {shape} trees (bound={bound}):")
    for n, height, pieces in out:
        limit = 3 * math.log2(n) + 2
        print(f"  n={n:>5}  pieces={pieces:>4}  height={height:>3}  "
              f"O(log n) limit={limit:.0f}")
        assert height <= limit


def test_height_grows_logarithmically(benchmark):
    """Doubling n adds O(1) height on the worst shape (a path)."""

    def run():
        heights = []
        for n in (128, 256, 512, 1024, 2048):
            kids = make_tree("path", n)
            _, pc, root = decompose_component(0, kids, 8)
            heights.append(piece_tree_height(pc, root))
        return heights

    heights = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E8] path heights for n=128..2048: {heights}")
    deltas = [b - a for a, b in zip(heights, heights[1:])]
    assert max(deltas) <= 3
