"""E2 — Table 1, Insert/Delete column.

Amortized IO rounds and communication per operation for insert and
delete batches.  Expected shapes:

* Distributed radix tree: O(l/s) rounds and words per key;
* Distributed x-fast trie: O(log l) rounds but O(l) words per key
  (every level's table is touched);
* PIM-trie: O(log P) rounds amortized, O(l/w) words per key.
"""

from __future__ import annotations

import math

import pytest

from conftest import build_pimtrie, build_radix, build_xfast, fmt_row, measure
from repro.workloads import uniform_keys

N_INITIAL = 256
N_OPS = 256


def run_insert(P: int, length: int) -> dict:
    initial = uniform_keys(N_INITIAL, length, seed=30)
    inserts = uniform_keys(N_OPS, length, seed=40)
    rows = {}

    system, trie = build_pimtrie(P, initial)
    _, m = measure(system, trie.insert_batch, inserts)
    rows["pim_trie"] = m

    system, radix = build_radix(P, initial, span=4)
    _, m = measure(system, radix.insert_batch, inserts)
    rows["dist_radix"] = m

    if length <= 128:
        system, xfast = build_xfast(P, initial, width=length)
        _, m = measure(system, xfast.insert_batch, inserts)
        rows["dist_xfast"] = m
    return rows


def run_delete(P: int, length: int) -> dict:
    initial = uniform_keys(N_INITIAL, length, seed=30)
    doomed = initial[:N_OPS]
    rows = {}

    system, trie = build_pimtrie(P, initial)
    _, m = measure(system, trie.delete_batch, doomed)
    rows["pim_trie"] = m

    system, radix = build_radix(P, initial, span=4)
    _, m = measure(system, radix.delete_batch, doomed)
    rows["dist_radix"] = m

    if length <= 128:
        system, xfast = build_xfast(P, initial, width=length)
        _, m = measure(system, xfast.delete_batch, doomed)
        rows["dist_xfast"] = m
    return rows


@pytest.mark.parametrize("length", [32, 64, 128])
def test_insert_vs_key_length(benchmark, length):
    P = 16
    rows = benchmark.pedantic(run_insert, args=(P, length), iterations=1, rounds=1)
    print(f"\n[E2] Insert, P={P}, l={length} bits, batch={N_OPS}")
    for name, m in rows.items():
        print("  " + fmt_row(name, m, N_OPS))
    # radix pays O(l/s) rounds; x-fast pays O(l) words/op
    assert rows["dist_radix"].io_rounds >= length / 4
    if "dist_xfast" in rows:
        xf = rows["dist_xfast"].total_communication / N_OPS
        pt = rows["pim_trie"].total_communication / N_OPS
        assert xf > length / 2  # Θ(l) words per key
        assert pt < xf  # PIM-trie beats x-fast on update traffic


@pytest.mark.parametrize("length", [64, 128])
def test_delete_vs_key_length(benchmark, length):
    P = 16
    rows = benchmark.pedantic(run_delete, args=(P, length), iterations=1, rounds=1)
    print(f"\n[E2] Delete, P={P}, l={length} bits, batch={N_OPS}")
    for name, m in rows.items():
        print("  " + fmt_row(name, m, N_OPS))
    assert rows["dist_radix"].io_rounds >= length / 4


def test_insert_amortized_rounds(benchmark):
    """Across many batches the amortized PIM-trie rounds stay O(log P)
    despite occasional block re-partitioning and HVM rebuild storms."""
    P = 16

    def run():
        system, trie = build_pimtrie(P, uniform_keys(64, 64, seed=1))
        totals = []
        for i in range(8):
            batch = uniform_keys(128, 64, seed=100 + i)
            _, m = measure(system, trie.insert_batch, batch)
            totals.append(m.io_rounds)
        return totals

    totals = benchmark.pedantic(run, iterations=1, rounds=1)
    amortized = sum(totals) / len(totals)
    print(f"\n[E2] amortized insert rounds/batch over 8 batches: {amortized:.1f}"
          f" (per-batch: {totals})")
    assert amortized <= 14 * (math.log2(P) + 1)
