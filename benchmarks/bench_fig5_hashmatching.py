"""E9 — Figure 5: the two-layer HashMatching index.

Figure 5 shows the efficient HashMatching path: pivot nodes on word
boundaries, a first-layer hash table keyed by hash(S_pre), and a second
layer that maps S_rem suffixes to meta-tree nodes using a padded y-fast
trie plus validity vectors.  This bench validates

* the paper's literal w=3 example (query "0" padded to "011"/"000"
  resolving to the child with S_rem="01");
* the second-layer semantics (max-LCP member, shortest on ties, no
  same-LCP proper-prefix winner) against brute force at scale;
* the O(log w) probe behaviour of the structures involved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BitString
from repro.fasttrie import ValidityIndex, XFastTrie, YFastTrie, ZFastTrie

bs = BitString.from_str


def test_figure5_example(benchmark):
    """The w=3 worked example of Figure 5."""

    def run():
        # second layer holding S_rem strings "" and "01" (the meta-tree
        # node for hash("000000") and its child)
        vi = ValidityIndex(3)
        vi.insert(bs(""))
        vi.insert(bs("01"))
        # S'_rem = "0" gathered below the critical pivot
        return vi.query(bs("0"))

    got = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E9] Figure 5 example: query '0' -> member '{got.to_str()}'")
    # the returned member leads to the target node or its direct child:
    # here the child with S_rem = "01" wins over the root "" since its
    # LCP with the padded query is longer
    assert got == bs("01") or got == bs("")
    assert got == bs("01")


@pytest.mark.parametrize("w", [8, 16, 32])
def test_second_layer_semantics(benchmark, w):
    """Validity-index answers match brute force over random member sets."""

    def run():
        rng = np.random.default_rng(w)
        failures = 0
        cases = 0
        for _ in range(60):
            members = set()
            vi = ValidityIndex(w)
            for _ in range(int(rng.integers(1, 20))):
                ln = int(rng.integers(0, w))
                v = int(rng.integers(0, 1 << ln)) if ln else 0
                m = BitString(v, ln)
                members.add(m)
                vi.insert(m)
            for _ in range(10):
                ln = int(rng.integers(0, w + 1))
                v = int(rng.integers(0, 1 << ln)) if ln else 0
                q = BitString(v, ln)
                got = vi.query(q)
                best = max(m.lcp_len(q) for m in members)
                cases += 1
                if got.lcp_len(q) != best:
                    failures += 1
        return cases, failures

    cases, failures = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E9] w={w}: {cases} queries, {failures} mismatches")
    assert failures == 0


def test_probe_counts_logarithmic(benchmark):
    """x-fast level probes and z-fast handle probes are O(log w)."""

    def run():
        w = 32
        x = XFastTrie(w)
        rng = np.random.default_rng(5)
        for v in rng.integers(0, 1 << w, size=500):
            x.insert(int(v))
        before = x.probes
        for v in rng.integers(0, 1 << w, size=200):
            x.predecessor(int(v))
        x_per_query = (x.probes - before) / 200

        z = ZFastTrie()
        members = set()
        for v in rng.integers(0, 1 << 32, size=200):
            shift = int(rng.integers(0, 24))
            members.add(BitString(int(v) >> (shift + 1), 31 - shift))
        z.bulk_build({m: None for m in members})
        before = z.probes
        for v in rng.integers(0, 1 << 31, size=200):
            z.lookup_deepest_prefix(BitString(int(v), 31))
        z_per_query = (z.probes - before) / 200
        return x_per_query, z_per_query

    x_per_query, z_per_query = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n[E9] probes/query: x-fast={x_per_query:.1f} "
        f"z-fast={z_per_query:.1f} (log2 w = 5)"
    )
    assert x_per_query <= 8  # ~log2(32) + slack
    assert z_per_query <= 10


def test_yfast_space_advantage(benchmark):
    """The y-fast layer keeps the index O(n) where x-fast pays Θ(n·w)."""

    def run():
        w = 20
        rng = np.random.default_rng(6)
        keys = [int(v) for v in rng.integers(0, 1 << w, size=3000)]
        x = XFastTrie(w)
        y = YFastTrie(w)
        for k in keys:
            x.insert(k)
            y.insert(k)
        return x.space_entries(), y.space_entries()

    xe, ye = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E9] space entries: x-fast={xe} y-fast={ye} (ratio {xe / ye:.1f})")
    assert xe > 3 * ye
