"""E10 — skew resistance (the paper's headline claim, §1/§5.2).

Per-module traffic load balance (max/mean) under adversary-controlled
workloads, PIM-trie vs the range-partitioned index and the distributed
radix tree:

* a *single-range flood* sends every query into one key range — the
  range-partitioned index serializes on one module (imbalance -> P)
  while PIM-trie stays near 1 (its blocks are placed uniformly at
  random and the Push-Pull rule moves hot work to the CPU);
* Zipf-skewed query mixes interpolate between the two regimes;
* a *shared-prefix flood* of inserts (worst-case data skew) must also
  stay balanced.
"""

from __future__ import annotations

import pytest

from conftest import build_pimtrie, build_radix, build_range, measure
from repro.workloads import (
    shared_prefix_flood,
    single_range_flood,
    uniform_keys,
    zipf_prefix,
)

P = 16
N_KEYS = 1024
N_QUERIES = 1024
LEN = 64


def workload(name: str):
    if name == "uniform":
        return uniform_keys(N_QUERIES, LEN, seed=201)
    if name == "zipf":
        return zipf_prefix(N_QUERIES, LEN, num_hot=16, theta=1.4, seed=202)
    if name == "flood":
        return single_range_flood(N_QUERIES, LEN, seed=203)
    raise ValueError(name)


@pytest.mark.parametrize("skew", ["uniform", "zipf", "flood"])
def test_query_load_balance(benchmark, skew):
    def run():
        keys = uniform_keys(N_KEYS, LEN, seed=200)
        queries = workload(skew)
        out = {}
        system, trie = build_pimtrie(P, keys)
        _, m = measure(system, trie.lcp_batch, queries)
        out["pim_trie"] = m
        system, ridx = build_range(P, keys)
        _, m = measure(system, ridx.lcp_batch, queries)
        out["range_partitioned"] = m
        system, radix = build_radix(P, keys, span=4)
        _, m = measure(system, radix.lcp_batch, queries)
        out["dist_radix"] = m
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n[E10] query skew = {skew}: traffic imbalance (max/mean, 1.0 = perfect)")
    for name, m in out.items():
        print(f"  {name:<20} imbalance={m.traffic_imbalance():5.2f}  "
              f"io_time={m.io_time}")
    if skew == "flood":
        # the paper's contrast: range partitioning serializes, PIM-trie
        # stays balanced within log-factors (whp bounds allow slack)
        assert out["range_partitioned"].traffic_imbalance() > 3.0
        assert out["pim_trie"].traffic_imbalance() < 4.0
        assert (
            out["pim_trie"].traffic_imbalance()
            < out["range_partitioned"].traffic_imbalance()
        )
        # the straggler metric shows the serialization directly
        assert out["pim_trie"].io_time < out["range_partitioned"].io_time
    if skew == "uniform":
        assert out["pim_trie"].traffic_imbalance() < 2.5


def test_insert_data_skew(benchmark):
    """Worst-case *data* skew: inserting a shared-prefix flood."""

    def run():
        keys = uniform_keys(N_KEYS, LEN, seed=210)
        flood = shared_prefix_flood(N_QUERIES, 48, 16, seed=211)
        out = {}
        system, trie = build_pimtrie(P, keys)
        _, m = measure(system, trie.insert_batch, flood)
        out["pim_trie"] = m
        system, ridx = build_range(P, keys)
        _, m = measure(system, ridx.insert_batch, flood)
        out["range_partitioned"] = m
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n[E10] insert flood (48-bit shared prefix):")
    for name, m in out.items():
        print(f"  {name:<20} imbalance={m.traffic_imbalance():5.2f}  "
              f"io_time={m.io_time}")
    assert (
        out["pim_trie"].traffic_imbalance()
        < out["range_partitioned"].traffic_imbalance()
    )


def test_io_time_under_flood(benchmark):
    """Definition 1 (PIM-balance): the *IO time* — the straggler metric —
    of PIM-trie under a flood stays close to its uniform-workload IO
    time for equal batch volume."""

    def run():
        keys = uniform_keys(N_KEYS, LEN, seed=220)
        out = {}
        for name, queries in (
            ("uniform", uniform_keys(N_QUERIES, LEN, seed=221)),
            ("flood", single_range_flood(N_QUERIES, LEN, seed=222)),
        ):
            system, trie = build_pimtrie(P, keys)
            _, m = measure(system, trie.lcp_batch, queries)
            out[name] = m
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    ratio = out["flood"].io_time / max(1, out["uniform"].io_time)
    print(
        f"\n[E10] PIM-trie io_time uniform={out['uniform'].io_time} "
        f"flood={out['flood'].io_time} (ratio {ratio:.2f})"
    )
    assert ratio < 4.0
