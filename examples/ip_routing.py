#!/usr/bin/env python
"""Longest-prefix-match IP routing on a PIM-trie.

Radix trees are the textbook structure for IP routing tables (the
paper's introduction cites BSD's routing table and Linux's page cache).
This example loads a synthetic CIDR table of variable-length prefixes
(/8 ... /28) into a PIM-trie, then answers longest-prefix-match lookups
for a batch of destination addresses — including an adversarial burst
where every packet targets the same /16, the situation that would
serialize a range-partitioned forwarding table.

Run:  python examples/ip_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.workloads import ip_prefixes


def ip_str(b: BitString) -> str:
    """Render a (possibly partial) IPv4 prefix as dotted/CIDR text."""
    padded = b.pad_to(32, 0)
    octets = [padded.substring(i, i + 8).value for i in range(0, 32, 8)]
    return ".".join(map(str, octets)) + f"/{len(b)}"


def main() -> None:
    P = 16
    system = PIMSystem(P, seed=7)

    # --- the routing table ------------------------------------------
    table = sorted(set(ip_prefixes(4000, seed=3)))
    next_hops = [f"eth{(i * 7) % 8}" for i in range(len(table))]
    fib = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=table, values=next_hops
    )
    print(f"FIB loaded: {fib.num_keys()} routes in {fib.num_blocks()} blocks "
          f"across {P} PIM modules")

    # --- a batch of destination lookups ------------------------------
    rng = np.random.default_rng(11)
    dests = [BitString(int(v), 32) for v in rng.integers(0, 1 << 32, size=512)]
    before = system.snapshot()
    lcps = fib.lcp_batch(dests)
    cost = system.snapshot().delta(before)

    # longest-prefix-match: the LCP depth is a route iff that exact
    # prefix is in the table; walk down to the longest stored prefix.
    prefix_set = set(table)
    hits = 0
    for d, lcp in zip(dests, lcps):
        plen = lcp
        while plen > 0 and d.prefix(plen) not in prefix_set:
            plen -= 1
        if plen:
            hits += 1
    print(
        f"\nuniform batch of {len(dests)} lookups: {hits} matched routes\n"
        f"  {cost.io_rounds} IO rounds, "
        f"{cost.total_communication / len(dests):.1f} words/lookup, "
        f"imbalance {cost.traffic_imbalance():.2f}"
    )
    for d, lcp in list(zip(dests, lcps))[:5]:
        print(f"  {ip_str(d)[:18]:<20} longest match: {lcp} bits")

    # --- adversarial burst: every packet in one /16 ------------------
    hot = table[len(table) // 2].prefix(16).pad_to(16, 0)
    burst = [
        hot + BitString(int(v), 16)
        for v in rng.integers(0, 1 << 16, size=512)
    ]
    before = system.snapshot()
    fib.lcp_batch(burst)
    cost = system.snapshot().delta(before)
    print(
        f"\nadversarial burst (all packets in {ip_str(hot)}): "
        f"\n  {cost.io_rounds} IO rounds, imbalance "
        f"{cost.traffic_imbalance():.2f}  <- stays balanced under skew"
    )

    # --- route updates: withdraw and announce ------------------------
    withdrawn = table[:100]
    announced = ip_prefixes(100, seed=99)
    fib.delete_batch(withdrawn)
    fib.insert_batch(announced, [f"eth{i % 8}" for i in range(len(announced))])
    print(f"\nafter updates: {fib.num_keys()} routes")

    # --- prefix aggregation via SubtreeQuery --------------------------
    agg = table[0].prefix(8)
    (routes,) = fib.subtree_batch([agg])
    print(f"routes inside {ip_str(agg)}: {len(routes)}")
    for k, v in routes[:4]:
        print(f"  {ip_str(k):<22} -> {v}")


if __name__ == "__main__":
    main()
