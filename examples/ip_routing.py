#!/usr/bin/env python
"""Longest-prefix-match IP routing on a PIM-trie.

Radix trees are the textbook structure for IP routing tables (the
paper's introduction cites BSD's routing table and Linux's page cache).
This example loads a synthetic CIDR table of variable-length prefixes
(/8 ... /28) into a PIM-trie, then answers longest-prefix-match lookups
for a batch of destination addresses — including an adversarial burst
where every packet targets the same /16, the situation that would
serialize a range-partitioned forwarding table.

Longest-prefix match uses the ordered op surface: one ``lcp_batch``
bounds the candidate prefix length, an exact ``lookup_batch`` resolves
the common case, and the misses fall back through batched
``predecessor_batch`` chains — in prefix-first key order every stored
prefix of a destination sorts at or below ``dest.prefix(lcp)``, so the
strict-predecessor walk visits stored routes in decreasing order and
the first one that is a prefix of the destination is the longest.

Run:  python examples/ip_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.workloads import ip_prefixes


def ip_str(b: BitString) -> str:
    """Render a (possibly partial) IPv4 prefix as dotted/CIDR text."""
    padded = b.pad_to(32, 0)
    octets = [padded.substring(i, i + 8).value for i in range(0, 32, 8)]
    return ".".join(map(str, octets)) + f"/{len(b)}"


def lpm_batch(fib: PIMTrie, dests: list[BitString]):
    """Longest-prefix match for every destination, batched end to end.

    Returns ``(routes, chain_rounds)``: per-destination ``(prefix,
    next_hop)`` or ``None``, plus the number of predecessor-chain
    rounds the whole batch needed (0 when every match was exact).
    """
    lcps = fib.lcp_batch(dests)
    cands = [d.prefix(l) for d, l in zip(dests, lcps)]
    hits = fib.lookup_batch(cands)
    routes: list = [None] * len(dests)
    probe: dict[int, BitString] = {}
    for i, (c, v) in enumerate(zip(cands, hits)):
        if not lcps[i]:
            continue  # no stored route shares even one leading bit
        if v is not None:
            routes[i] = (c, v)  # the LCP depth is itself a route
        else:
            probe[i] = c
    chain_rounds = 0
    while probe:
        idxs = sorted(probe)
        preds = fib.predecessor_batch([probe[i] for i in idxs])
        cands: dict[int, BitString] = {}
        for i, p in zip(idxs, preds):
            if p is None:
                continue  # ran off the bottom: no matching route
            k, v = p
            if dests[i].starts_with(k):
                routes[i] = (k, v)  # longest stored prefix of dest
            else:
                # every remaining stored prefix of dest is no longer
                # than lcp(k, dest) — jump straight to that candidate
                # (strictly shorter each round, so chains are bounded
                # by the address width)
                c = dests[i].prefix(k.lcp_len(dests[i]))
                if len(c):
                    cands[i] = c
        probe = {}
        if cands:
            li = sorted(cands)
            vals = fib.lookup_batch([cands[i] for i in li])
            for i, v in zip(li, vals):
                if v is not None:
                    routes[i] = (cands[i], v)
                else:
                    probe[i] = cands[i]
        chain_rounds += 1
    return routes, chain_rounds


def main() -> None:
    P = 16
    system = PIMSystem(P, seed=7)

    # --- the routing table ------------------------------------------
    table = sorted(set(ip_prefixes(4000, seed=3)))
    next_hops = [f"eth{(i * 7) % 8}" for i in range(len(table))]
    fib = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=table, values=next_hops
    )
    print(f"FIB loaded: {fib.num_keys()} routes in {fib.num_blocks()} blocks "
          f"across {P} PIM modules")

    # --- a batch of destination lookups ------------------------------
    rng = np.random.default_rng(11)
    dests = [BitString(int(v), 32) for v in rng.integers(0, 1 << 32, size=512)]
    before = system.snapshot()
    routes, chain_rounds = lpm_batch(fib, dests)
    cost = system.snapshot().delta(before)

    hits = sum(1 for r in routes if r is not None)
    print(
        f"\nuniform batch of {len(dests)} lookups: {hits} matched routes "
        f"({chain_rounds} predecessor-chain rounds)\n"
        f"  {cost.io_rounds} IO rounds, "
        f"{cost.total_communication / len(dests):.1f} words/lookup, "
        f"imbalance {cost.traffic_imbalance():.2f}"
    )
    for d, r in list(zip(dests, routes))[:5]:
        match = f"{ip_str(r[0])} -> {r[1]}" if r else "no route"
        print(f"  {ip_str(d)[:18]:<20} longest match: {match}")

    # consistency check: the predecessor-chain answers must equal the
    # textbook host-side walk-down over the prefix set
    value_of = dict(zip(table, next_hops))
    prefix_set = set(table)
    ok = True
    for d, r in zip(dests, routes):
        plen = max((len(p) for p in prefix_set if d.starts_with(p)),
                   default=0)
        want = (d.prefix(plen), value_of[d.prefix(plen)]) if plen else None
        ok = ok and (r == want)
    print(f"predecessor-chain LPM consistent with host reference: {ok}")

    # --- adversarial burst: every packet in one /16 ------------------
    hot = table[len(table) // 2].prefix(16).pad_to(16, 0)
    burst = [
        hot + BitString(int(v), 16)
        for v in rng.integers(0, 1 << 16, size=512)
    ]
    before = system.snapshot()
    fib.lcp_batch(burst)
    cost = system.snapshot().delta(before)
    print(
        f"\nadversarial burst (all packets in {ip_str(hot)}): "
        f"\n  {cost.io_rounds} IO rounds, imbalance "
        f"{cost.traffic_imbalance():.2f}  <- stays balanced under skew"
    )

    # --- route updates: withdraw and announce ------------------------
    withdrawn = table[:100]
    announced = ip_prefixes(100, seed=99)
    fib.delete_batch(withdrawn)
    fib.insert_batch(announced, [f"eth{i % 8}" for i in range(len(announced))])
    print(f"\nafter updates: {fib.num_keys()} routes")

    # --- prefix aggregation via SubtreeQuery --------------------------
    agg = table[0].prefix(8)
    (routes,) = fib.subtree_batch([agg])
    print(f"routes inside {ip_str(agg)}: {len(routes)}")
    for k, v in routes[:4]:
        print(f"  {ip_str(k):<22} -> {v}")


if __name__ == "__main__":
    main()
