#!/usr/bin/env python
"""Quickstart: build a PIM-trie, run every batch operation, and read the
PIM Model cost metrics.

Run:  python examples/quickstart.py
"""

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig

bs = BitString.from_str


def main() -> None:
    # A simulated PIM system with 8 modules (P = 8 in the paper).
    system = PIMSystem(num_modules=8, seed=42)

    # The data trie of the paper's Figure 1, plus values.
    keys = ["000010", "00001101", "1010000", "1010111", "101011"]
    trie = PIMTrie(
        system,
        PIMTrieConfig(num_modules=8),
        keys=[bs(k) for k in keys],
        values=[f"value-of-{k}" for k in keys],
    )
    print(f"built: {trie}")

    # --- LongestCommonPrefix (§5.1) --------------------------------
    queries = ["101001", "00001001", "111"]
    before = system.snapshot()
    lcps = trie.lcp_batch([bs(q) for q in queries])
    cost = system.snapshot().delta(before)
    print("\nLCP batch:")
    for q, lcp in zip(queries, lcps):
        print(f"  LCP({q!r}) = {lcp}   (matched prefix {q[:lcp]!r})")
    print(
        f"  cost: {cost.io_rounds} IO rounds, "
        f"{cost.total_communication} words moved, "
        f"traffic imbalance {cost.traffic_imbalance():.2f}"
    )

    # --- Insert (§5.2) ----------------------------------------------
    fresh = ["1111", "101010"]
    added = trie.insert_batch([bs(k) for k in fresh], [f"value-of-{k}" for k in fresh])
    print(f"\ninserted {added} new keys -> {trie.num_keys()} total")

    # --- exact lookups ----------------------------------------------
    vals = trie.lookup_batch([bs("1111"), bs("0000")])
    print(f"lookup('1111') = {vals[0]!r}, lookup('0000') = {vals[1]!r}")

    # --- SubtreeQuery (§5.3) ----------------------------------------
    (subtree,) = trie.subtree_batch([bs("1010")])
    print("\nkeys under prefix '1010':")
    for k, v in subtree:
        print(f"  {k.to_str()}  ->  {v!r}")

    # --- Delete (§5.2) ----------------------------------------------
    removed = trie.delete_batch([bs("101011"), bs("000000")])
    print(f"\ndeleted {removed} keys -> {trie.num_keys()} total")

    # --- whole-run accounting ---------------------------------------
    snap = system.snapshot()
    print(
        f"\nsession totals: {snap.io_rounds} rounds, "
        f"{snap.total_communication} words, "
        f"PIM time {snap.pim_time}, CPU work {snap.cpu_work}"
    )


if __name__ == "__main__":
    main()
