#!/usr/bin/env python
"""Genome k-mer prefix index on a PIM-trie.

The paper's conclusion names suffix trees / genome processing as the
intended follow-on applications of the trie-matching machinery.  This
example takes a synthetic DNA sequence, indexes all of its k-mers
(2 bits per base) in a PIM-trie, and runs the core read-mapping
primitive: for each read fragment, find the longest prefix that occurs
in the genome (seed detection), in large batches.

DNA is a naturally skewed alphabet workload — repeats (here: a planted
tandem repeat) concentrate many k-mers on one subtree, which is exactly
the data skew PIM-trie tolerates.

Run:  python examples/genome_kmers.py
"""

from __future__ import annotations

import numpy as np

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig

BASES = "ACGT"
ENC = {b: i for i, b in enumerate(BASES)}


def encode(seq: str) -> BitString:
    """2-bit encode a DNA string (A=00, C=01, G=10, T=11)."""
    v = 0
    for ch in seq:
        v = (v << 2) | ENC[ch]
    return BitString(v, 2 * len(seq))


def decode(b: BitString) -> str:
    assert len(b) % 2 == 0
    return "".join(BASES[b.substring(i, i + 2).value] for i in range(0, len(b), 2))


def synthetic_genome(n: int, seed: int = 0) -> str:
    """Random genome with a planted 24-base tandem repeat region."""
    rng = np.random.default_rng(seed)
    body = "".join(BASES[i] for i in rng.integers(0, 4, size=n))
    unit = "ACGTTGCAGGCTAACGTTGCAGGC"
    mid = n // 2
    return body[:mid] + unit * 12 + body[mid:]


def main() -> None:
    P = 16
    K = 24  # k-mer length in bases (48 bits)
    genome = synthetic_genome(3000, seed=5)
    print(f"genome: {len(genome)} bases (with a planted tandem repeat)")

    # --- index all k-mers -------------------------------------------
    kmers = {}
    for i in range(len(genome) - K + 1):
        kmers.setdefault(genome[i : i + K], i)  # first occurrence position
    keys = [encode(s) for s in kmers]
    positions = list(kmers.values())
    system = PIMSystem(P, seed=3)
    index = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=keys, values=positions
    )
    print(f"indexed {index.num_keys()} distinct {K}-mers "
          f"({index.num_blocks()} blocks on {P} modules)")

    # --- batched seed detection --------------------------------------
    rng = np.random.default_rng(9)
    reads = []
    for _ in range(256):
        pos = int(rng.integers(0, len(genome) - K))
        read = list(genome[pos : pos + K])
        # mutate a suffix position to simulate sequencing error
        mut = int(rng.integers(K // 2, K))
        read[mut] = BASES[(ENC[read[mut]] + 1) % 4]
        reads.append("".join(read))

    before = system.snapshot()
    lcps = index.lcp_batch([encode(r) for r in reads])
    cost = system.snapshot().delta(before)
    seed_lens = [l // 2 for l in lcps]  # bits -> bases
    print(
        f"\nseed detection over {len(reads)} reads: "
        f"mean seed {np.mean(seed_lens):.1f} bases, "
        f"min {min(seed_lens)}, max {max(seed_lens)}"
    )
    print(
        f"cost: {cost.io_rounds} IO rounds, "
        f"{cost.total_communication / len(reads):.1f} words/read, "
        f"imbalance {cost.traffic_imbalance():.2f}"
    )

    # --- the repeat region: adversarial k-mer skew -------------------
    unit = "ACGTTGCAGGCTAACGTTGCAGGC"
    repeat_reads = [unit[i % 12 :][:K].ljust(K, "A") for i in range(256)]
    before = system.snapshot()
    index.lcp_batch([encode(r) for r in repeat_reads])
    cost = system.snapshot().delta(before)
    print(
        f"\nrepeat-region burst (all reads hit the tandem repeat): "
        f"imbalance {cost.traffic_imbalance():.2f} — balanced despite skew"
    )

    # --- k-mer neighborhood via SubtreeQuery --------------------------
    probe = unit[:8]
    (hits,) = index.subtree_batch([encode(probe)])
    print(f"\nk-mers extending seed {probe!r}: {len(hits)}")
    for km, pos in hits[:4]:
        print(f"  {decode(km)}  @ position {pos}")


if __name__ == "__main__":
    main()
