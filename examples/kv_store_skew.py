#!/usr/bin/env python
"""A skew-resistant key-value store: PIM-trie vs range partitioning.

The scenario the paper's skew-resistance claim targets: a KV store
whose tenants issue heavily skewed request streams (one hot tenant, or
one hot keyspace region).  We run identical workloads against a
PIM-trie and a range-partitioned index on identical simulated PIM
systems and compare the *straggler* metrics the PIM Model exposes —
IO time (max per-module traffic) and per-module load balance — across
increasing skew.

Run:  python examples/kv_store_skew.py
"""

from __future__ import annotations

from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.baselines import RangePartitionedIndex
from repro.workloads import single_range_flood, uniform_keys, zipf_prefix

P = 16
N_KEYS = 2048
N_OPS = 1024
LEN = 64


def run(index_name: str, workload_name: str, queries):
    system = PIMSystem(P, seed=5)
    keys = uniform_keys(N_KEYS, LEN, seed=1)
    values = [f"v{i}" for i in range(N_KEYS)]
    if index_name == "pim_trie":
        idx = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=values
        )
    else:
        idx = RangePartitionedIndex(system, keys=keys, values=values)
    before = system.snapshot()
    idx.lcp_batch(queries)
    cost = system.snapshot().delta(before)
    return cost


def main() -> None:
    workloads = {
        "uniform": uniform_keys(N_OPS, LEN, seed=2),
        "zipf(1.2)": zipf_prefix(N_OPS, LEN, theta=1.2, seed=3),
        "zipf(1.6)": zipf_prefix(N_OPS, LEN, theta=1.6, seed=4),
        "flood": single_range_flood(N_OPS, LEN, seed=5),
    }
    print(f"KV store on {P} PIM modules, {N_KEYS} keys, "
          f"{N_OPS}-op read batches\n")
    print(f"{'workload':<12} {'index':<18} {'io_time':>8} {'imbalance':>10} "
          f"{'words/op':>9}")
    print("-" * 62)
    for wname, queries in workloads.items():
        for iname in ("pim_trie", "range_partition"):
            cost = run(iname, wname, queries)
            print(
                f"{wname:<12} {iname:<18} {cost.io_time:>8} "
                f"{cost.traffic_imbalance():>10.2f} "
                f"{cost.total_communication / N_OPS:>9.1f}"
            )
        print()
    print(
        "Reading the table: under 'flood' every request hits one key\n"
        "range.  The range-partitioned store pushes the whole batch to a\n"
        "single module (io_time ~= total words, imbalance -> P), while\n"
        "the PIM-trie's random block placement plus Push-Pull keeps both\n"
        "metrics near their uniform-workload values — the paper's\n"
        "skew-resistance guarantee (Theorem 4.3, Definition 1)."
    )


if __name__ == "__main__":
    main()
