#!/usr/bin/env python
"""A URL-path index with prefix analytics (SubtreeQuery showcase).

Variable-length string keys are the trie family's home turf: this
example indexes synthetic URL paths (as raw UTF-8 bit-strings) in a
PIM-trie and runs the kind of prefix analytics a web log pipeline
needs — "all endpoints under /api/v2", hit counting per subtree, and
incremental index maintenance as new paths stream in.

Run:  python examples/url_index.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.workloads import text_keys


def to_text(b: BitString) -> str:
    raw = bytes(
        int(b.to_str()[i : i + 8], 2) for i in range(0, len(b), 8)
    )
    return raw.decode("utf-8", errors="replace")


def main() -> None:
    P = 8
    system = PIMSystem(P, seed=9)

    # --- ingest an initial crawl -------------------------------------
    paths = sorted(set(text_keys(3000, seed=21)))
    hits = {p: int(h) for p, h in zip(paths, np.random.default_rng(1).integers(1, 500, len(paths)))}
    index = PIMTrie(
        system,
        PIMTrieConfig(num_modules=P),
        keys=paths,
        values=[hits[p] for p in paths],
    )
    print(f"indexed {index.num_keys()} distinct URL paths "
          f"({index.num_blocks()} trie blocks)")

    # --- prefix analytics via SubtreeQuery ---------------------------
    for prefix_text in ("/api", "/api/v2", "/static"):
        prefix = BitString.from_text(prefix_text)
        (rows,) = index.subtree_batch([prefix])
        total_hits = sum(v for _, v in rows)
        print(f"\n{prefix_text!r}: {len(rows)} endpoints, "
              f"{total_hits} total hits")
        top = sorted(rows, key=lambda kv: -kv[1])[:3]
        for k, v in top:
            print(f"  {to_text(k):<32} {v:>6} hits")

    # --- batch LCP as a router: find the deepest known mount point ---
    probes = ["/api/v2/users/42", "/img/logo.png", "/nope/nothing"]
    lcps = index.lcp_batch([BitString.from_text(p) for p in probes])
    print("\nrouting probes (longest known prefix, in whole bytes):")
    for p, lcp in zip(probes, lcps):
        print(f"  {p:<22} -> {p[: lcp // 8]!r}")

    # --- streaming updates -------------------------------------------
    stream = sorted(set(text_keys(500, seed=22)) - set(paths))
    before = system.snapshot()
    index.insert_batch(stream, [1] * len(stream))
    cost = system.snapshot().delta(before)
    print(
        f"\nstreamed {len(stream)} new paths in {cost.io_rounds} IO rounds "
        f"({cost.total_communication / max(1, len(stream)):.1f} words/path)"
    )
    print(f"index now holds {index.num_keys()} paths")


if __name__ == "__main__":
    main()
